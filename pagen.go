// Package pagen generates massive scale-free networks with the
// preferential-attachment (Barabási–Albert) model, using the
// distributed-memory parallel algorithms of Alam, Khan & Marathe
// (SC'13): an exact parallelisation of the copy model with
// request/resolved message resolution of attachment dependencies, and
// the UCP / LCP / RRP node-partitioning schemes.
//
// Quick start:
//
//	res, err := pagen.Generate(pagen.Config{N: 1_000_000, X: 4, Ranks: 8})
//	if err != nil { ... }
//	fmt.Println(res.Graph.M(), "edges")
//
// The parallel engine runs its ranks as goroutines over an in-process
// message-passing runtime by default; see cmd/pa-tcp for genuine
// multi-process distributed-memory execution over TCP.
package pagen

import (
	"errors"
	"io"
	"sync/atomic"

	"pagen/internal/analysis"
	"pagen/internal/core"
	"pagen/internal/esink"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/obs"
	"pagen/internal/partition"
	"pagen/internal/seq"
	"pagen/internal/xrand"
)

// Re-exported result and graph types. These alias the implementation
// types so the internal packages remain the single source of truth.
type (
	// Graph is an undirected graph stored as an edge list.
	Graph = graph.Graph
	// Edge is one undirected edge.
	Edge = graph.Edge
	// CSR is a compressed-sparse-row adjacency view of a Graph.
	CSR = graph.CSR
	// Result is the output of a parallel generation run: the merged
	// graph, per-rank statistics and (optionally) the decision trace.
	Result = core.Result
	// RankStats are one rank's load and traffic statistics.
	RankStats = core.RankStats
	// Trace records per-slot attachment decisions for chain analysis.
	Trace = model.Trace
	// DegreeReport summarises a network's degree distribution,
	// including the fitted power-law exponent.
	DegreeReport = analysis.DegreeReport
	// Params are the raw copy-model parameters.
	Params = model.Params
	// Partition assigns nodes to ranks (UCP, LCP, RRP or ExactCP).
	Partition = partition.Scheme
	// RunMetrics is the JSON-exportable metric set of one run (see
	// internal/obs for the metric definitions and paper counterparts).
	RunMetrics = obs.RunMetrics
)

// DefaultP is the copy probability at which the model is exactly
// Barabási–Albert.
const DefaultP = model.DefaultP

// errCheckpointStreaming rejects checkpoint configuration on the
// streaming entry points: snapshots capture buffered engine state, and
// edges already handed to a sink cannot be rewound on resume.
var errCheckpointStreaming = errors.New("pagen: checkpointing is incompatible with streaming generation (use Generate)")

// Config configures Generate.
type Config struct {
	// N is the number of nodes (required, > X).
	N int64
	// X is the number of edges each new node attaches with (>= 1).
	X int
	// P is the direct-attachment probability; 0 means DefaultP (0.5,
	// exact Barabási–Albert). Other values tune the power-law exponent.
	P float64
	// Ranks is the number of parallel processors to simulate
	// (default 1).
	Ranks int
	// Workers is the number of generation goroutines per rank. Zero or
	// negative selects runtime.GOMAXPROCS(0); the engine clamps it to
	// the rank's local node count. Output is byte-identical across
	// worker counts.
	Workers int
	// Transport selects how co-located ranks exchange message batches:
	// "shm" (the default; batches move between rank goroutines by
	// reference, no per-message serialization) or "local" (every batch
	// round-trips through the wire codec — the serialization ablation).
	// Output is byte-identical across transports.
	Transport string
	// Scheme is the node-partitioning scheme: "RRP" (default), "LCP",
	// "UCP" or "ExactCP".
	Scheme string
	// Seed makes runs reproducible; x = 1 outputs are identical across
	// any Ranks/Scheme combination for a fixed seed.
	Seed uint64
	// BufferCap is the per-destination message-buffer capacity
	// (0 = default; 1 disables buffering).
	BufferCap int
	// PollEvery is the generation-loop inbox polling interval. Zero or
	// negative selects adaptive polling: the engine starts at the
	// default interval and retunes it against the observed pending-wait
	// depth. A positive value fixes the interval.
	PollEvery int
	// HubPrefix controls the replicated hub-prefix cache, which answers
	// copy queries for the first H nodes from a local replica instead of
	// a cross-rank round trip. 0 (the default) sizes H automatically to
	// cover a fixed fraction of the expected request mass; a negative
	// value disables the cache; a positive value fixes H. Output is
	// byte-identical for every setting. All ranks of one run must agree.
	HubPrefix int64
	// RecordTrace collects the attachment-decision trace in the result
	// (costs ~13 bytes per edge).
	RecordTrace bool
	// CollectNodeLoad counts copy-resolution queries received per node
	// (the empirical M_k of Lemma 3.4) in Result.NodeLoad, so Metrics
	// can export the measured-versus-predicted load curve. Costs one
	// increment per copy query plus 8 bytes per node.
	CollectNodeLoad bool
	// CheckpointDir enables cooperative checkpointing: every rank
	// writes a versioned, CRC-protected snapshot of its engine state
	// into this directory at each checkpoint epoch. Restarting from a
	// checkpoint (Resume) reproduces the exact graph an uninterrupted
	// run would have produced. See docs/CHECKPOINT_FORMAT.md and
	// docs/OPERATIONS.md. Incompatible with RecordTrace,
	// CollectNodeLoad and the streaming entry points.
	CheckpointDir string
	// CheckpointEvery is the approximate number of protocol events
	// (nodes initiated plus messages received, summed over ranks)
	// between checkpoint epochs. Zero with a CheckpointDir set means
	// snapshots are only read (resume), never written.
	CheckpointEvery int64
	// CheckpointKeep is how many full epochs to retain per rank (older
	// ones, and the delta chains based on them, are pruned after each
	// publish; 0 = keep 2).
	CheckpointKeep int
	// CheckpointFullEvery is the full-snapshot cadence: every
	// CheckpointFullEvery-th epoch writes a full snapshot and the
	// epochs between write incremental deltas carrying only the
	// attachment-table ranges dirtied since the previous epoch
	// (docs/CHECKPOINT_FORMAT.md, format v5). 0 or 1 = every epoch is
	// full.
	CheckpointFullEvery int
	// Resume loads the latest mutually-complete checkpoint epoch from
	// CheckpointDir before generating, skipping all work committed up
	// to that epoch. When no usable epoch exists the run starts fresh.
	Resume bool
	// Resolve selects how non-local copy dependencies are answered:
	// "wire" (the default; the paper's request/resolved message round
	// trip) or "recompute" (replay the owning node's RNG stream locally
	// — no data messages — falling back to the wire past
	// RecomputeDepth). Output is byte-identical in both modes.
	Resolve string
	// RecomputeDepth caps how many nodes one recompute replay chain may
	// descend before falling back to the wire protocol. 0 selects
	// ~2*log2(N) (Theorem 3.3 bounds chain depth by O(log n) w.h.p.).
	// Only meaningful with Resolve: "recompute".
	RecomputeDepth int
	// StreamDir enables the external-memory edge sink: each rank spills
	// its resolved edges into a compressed per-rank shard file under this
	// directory (docs/SHARD_FORMAT.md) instead of materialising the edge
	// list, so resident memory stays bounded regardless of N.
	// Result.Graph is nil; read the output back with ReadStreamDir or
	// stream it with internal tooling (cmd/pa-analyze -stream-dir).
	// Composes with CheckpointDir: a killed run resumes without
	// duplicating or dropping edges, and the merged shards stay
	// byte-identical to an uninterrupted run.
	StreamDir string
	// StreamBlockEdges is the number of edge records buffered per shard
	// block before a sorted flush (0 selects the default, 65536 — about
	// 1 MiB of buffer per rank). Only meaningful with StreamDir.
	StreamBlockEdges int
}

// resolve parses the Config resolve-mode selector.
func (c Config) resolve() (core.ResolveMode, error) {
	if c.Resolve == "" {
		return core.ResolveWire, nil
	}
	return core.ParseResolveMode(c.Resolve)
}

// checkpoint translates the Config checkpoint fields to engine options
// (nil when checkpointing is not requested).
func (c Config) checkpoint() *core.CheckpointOptions {
	if c.CheckpointDir == "" && c.CheckpointEvery == 0 && !c.Resume {
		return nil
	}
	return &core.CheckpointOptions{
		Dir:       c.CheckpointDir,
		Every:     c.CheckpointEvery,
		Keep:      c.CheckpointKeep,
		FullEvery: c.CheckpointFullEvery,
		Resume:    c.Resume,
	}
}

// params builds and validates model parameters.
func (c Config) params() (model.Params, error) {
	p := c.P
	if p == 0 {
		p = DefaultP
	}
	pr := model.Params{N: c.N, X: c.X, P: p}
	return pr, pr.Validate()
}

// partition builds the configured partitioning scheme.
func (c Config) partition(pr model.Params) (partition.Scheme, error) {
	ranks := c.Ranks
	if ranks == 0 {
		ranks = 1
	}
	name := c.Scheme
	if name == "" {
		name = "RRP"
	}
	kind, err := partition.ParseKind(name)
	if err != nil {
		return nil, err
	}
	return partition.New(kind, pr.N, ranks)
}

// Generate runs the parallel preferential-attachment generator and
// returns the merged graph with per-rank statistics.
func Generate(cfg Config) (*Result, error) {
	pr, err := cfg.params()
	if err != nil {
		return nil, err
	}
	part, err := cfg.partition(pr)
	if err != nil {
		return nil, err
	}
	mode, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return core.Run(core.Options{
		Params:           pr,
		Part:             part,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
		Transport:        cfg.Transport,
		BufferCap:        cfg.BufferCap,
		PollEvery:        cfg.PollEvery,
		HubPrefix:        cfg.HubPrefix,
		Resolve:          mode,
		RecomputeDepth:   cfg.RecomputeDepth,
		CollectNodeLoad:  cfg.CollectNodeLoad,
		Checkpoint:       cfg.checkpoint(),
		StreamDir:        cfg.StreamDir,
		StreamBlockEdges: cfg.StreamBlockEdges,
	}, cfg.RecordTrace)
}

// GenerateSeq runs the sequential copy model — the T_s baseline of the
// paper's speedup measurements. A trace is returned when
// cfg.RecordTrace is set. Ranks/Scheme are ignored.
func GenerateSeq(cfg Config) (*Graph, *Trace, error) {
	pr, err := cfg.params()
	if err != nil {
		return nil, nil, err
	}
	return seq.CopyModel(pr, cfg.Seed, seq.CopyModelOptions{RecordTrace: cfg.RecordTrace})
}

// GenerateBA runs the sequential Batagelj–Brandes algorithm (exact BA,
// ignores cfg.P). It is the classic efficient sequential baseline.
func GenerateBA(cfg Config) (*Graph, error) {
	pr, err := cfg.params()
	if err != nil {
		return nil, err
	}
	return seq.BatageljBrandes(pr, xrand.New(cfg.Seed))
}

// Analyze computes the degree report of a generated graph. dmin is the
// power-law tail cutoff; 0 selects 2*X heuristically from the mean
// degree.
func Analyze(g *Graph, dmin int64) (DegreeReport, error) {
	if dmin <= 0 {
		dmin = int64(g.DegreeHistogram().Mean())
		if dmin < 1 {
			dmin = 1
		}
	}
	return analysis.AnalyzeDegrees(g, dmin)
}

// ChainLengths computes per-slot dependency-chain lengths from a trace
// (Section 3.4 of the paper; Theorem 3.3 bounds these by O(log n)).
func ChainLengths(tr *Trace) []int32 {
	return analysis.DependencyChainLengths(tr)
}

// NewPartition constructs a partitioning scheme by name for external
// inspection (sizes, owners, expected loads).
func NewPartition(scheme string, n int64, ranks int) (Partition, error) {
	kind, err := partition.ParseKind(scheme)
	if err != nil {
		return nil, err
	}
	return partition.New(kind, n, ranks)
}

// GenerateStream runs the parallel generator but streams every finalised
// edge to sink instead of materialising the graph — the paper's
// "generate on the fly and analyze without disk I/O" mode. sink is
// called concurrently from rank goroutines — and, with Workers > 1,
// from the worker goroutines within a rank (rank identifies the calling
// rank, not the worker) — so it must be safe for fully concurrent use;
// dispatching on rank alone is only enough at Workers <= 1. The
// returned Result has a nil Graph; per-rank stats are still collected.
func GenerateStream(cfg Config, sink func(rank int, e Edge)) (*Result, error) {
	if cfg.checkpoint() != nil {
		return nil, errCheckpointStreaming
	}
	pr, err := cfg.params()
	if err != nil {
		return nil, err
	}
	part, err := cfg.partition(pr)
	if err != nil {
		return nil, err
	}
	mode, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return core.Run(core.Options{
		Params:         pr,
		Part:           part,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
		Transport:      cfg.Transport,
		BufferCap:      cfg.BufferCap,
		PollEvery:      cfg.PollEvery,
		HubPrefix:      cfg.HubPrefix,
		Resolve:        mode,
		RecomputeDepth: cfg.RecomputeDepth,
		Sink:           sink,
	}, cfg.RecordTrace)
}

// GenerateToShards runs the parallel generator with every rank streaming
// its edges straight to its own shard file under dir — the paper's
// shared-file-system I/O model (Section 2) — without materialising the
// graph. Read the result back with ReadShards.
func GenerateToShards(cfg Config, dir string) (*Result, error) {
	if cfg.checkpoint() != nil {
		return nil, errCheckpointStreaming
	}
	pr, err := cfg.params()
	if err != nil {
		return nil, err
	}
	part, err := cfg.partition(pr)
	if err != nil {
		return nil, err
	}
	mode, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	return core.RunToShards(core.Options{
		Params:         pr,
		Part:           part,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
		Transport:      cfg.Transport,
		BufferCap:      cfg.BufferCap,
		PollEvery:      cfg.PollEvery,
		HubPrefix:      cfg.HubPrefix,
		Resolve:        mode,
		RecomputeDepth: cfg.RecomputeDepth,
	}, dir)
}

// ReadShards merges the shard files a GenerateToShards run (or pa-tcp
// ranks) wrote under dir.
func ReadShards(dir string, ranks int) (*Graph, error) {
	return graph.ReadShards(dir, ranks)
}

// ReadStreamDir materialises the merged graph of a streamed run
// (Config.StreamDir, or pa-tcp -stream-dir) from its per-rank shard
// files. The edge order is identical to the Result.Graph an in-memory
// run produces. This loads the whole edge list — for graphs too large
// for that (the reason the run streamed in the first place), iterate
// the shards out of core instead: cmd/pa-analyze -stream-dir computes
// degree statistics and fingerprints in bounded memory.
func ReadStreamDir(dir string, ranks int) (*Graph, error) {
	d, err := esink.OpenDir(dir, ranks)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	m := d.Edges()
	g := graph.New(d.Meta().N)
	g.Edges = make([]Edge, 0, m)
	it := d.Iter(0)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		g.Edges = append(g.Edges, e)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// Metrics assembles the exported observability record of a completed
// run: per-rank counters and wait-chain histograms, plus — when cfg set
// CollectNodeLoad — the binned per-node received-message-load curve with
// the Lemma 3.4 prediction (1-p)(H_{n-1} - H_k) per slot alongside.
// Write it with its WriteJSON method (cmd/pagen's -metrics flag does).
func Metrics(res *Result, cfg Config) *RunMetrics {
	pr, err := cfg.params()
	if err != nil {
		return nil
	}
	ranks := cfg.Ranks
	if ranks == 0 {
		ranks = 1
	}
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = "RRP"
	}
	m := &obs.RunMetrics{
		N:            pr.N,
		X:            pr.X,
		P:            pr.P,
		Ranks:        ranks,
		Scheme:       scheme,
		Seed:         cfg.Seed,
		ElapsedNanos: res.Elapsed.Nanoseconds(),
	}
	for _, st := range res.Ranks {
		m.PerRank = append(m.PerRank, st.Metrics())
	}
	if res.NodeLoad != nil {
		curve := obs.BinNodeLoad(res.NodeLoad, pr.N, pr.X, pr.P, 0)
		m.NodeLoad = &curve
	}
	return m
}

// ReadMetricsJSON parses a metrics record previously written with
// RunMetrics.WriteJSON (for example by pagen -metrics or pa-tcp
// -metrics).
func ReadMetricsJSON(r io.Reader) (*RunMetrics, error) {
	return obs.ReadJSON(r)
}

// EdgesPerSecond is a convenience for throughput reporting. It works for
// both materialised and streamed (GenerateStream) results.
func EdgesPerSecond(res *Result) float64 {
	if res.Elapsed <= 0 {
		return 0
	}
	var m int64
	if res.Graph != nil {
		m = res.Graph.M()
	} else {
		for _, st := range res.Ranks {
			m += st.Edges
		}
	}
	return float64(m) / res.Elapsed.Seconds()
}

// DegreesStreamed computes the degree sequence of a run without ever
// materialising the edge list: ranks stream edges into a shared counter
// array with atomic increments. Peak memory is 8n bytes instead of ~16m
// — the difference between fitting and not fitting a dense (large x)
// network in RAM, the constraint the paper's Section 4.3 hit at 6x10^9
// edges.
func DegreesStreamed(cfg Config) ([]int64, *Result, error) {
	pr, err := cfg.params()
	if err != nil {
		return nil, nil, err
	}
	deg := make([]int64, pr.N)
	res, err := GenerateStream(cfg, func(rank int, e Edge) {
		atomic.AddInt64(&deg[e.U], 1)
		atomic.AddInt64(&deg[e.V], 1)
	})
	if err != nil {
		return nil, nil, err
	}
	return deg, res, nil
}

// MemoryEstimate returns the approximate peak bytes of heap the
// in-process parallel generator needs for cfg — the sizing question the
// paper's Section 4.3 raises (their sequential C++ implementation capped
// out at 6x10^9 edges for memory reasons). The estimate covers the
// attachment tables (8 bytes per slot), the materialised edge list
// (16 bytes per edge; use GenerateStream or StreamDir to drop this
// term), and a small per-rank overhead; the optional decision trace
// adds 13 bytes per slot. With StreamDir the edge terms vanish and each
// rank adds only its open-block buffer (16 bytes times
// StreamBlockEdges).
func MemoryEstimate(cfg Config) int64 {
	pr, err := cfg.params()
	if err != nil {
		return 0
	}
	slots := (pr.N - int64(pr.X)) * int64(pr.X)
	est := slots * 8       // F tables
	est += pr.M() * 16     // edge storage
	est += pr.M() * 16 / 4 // slice growth + queue slack (~25%)
	if cfg.RecordTrace {
		est += slots * 13
	}
	ranks := cfg.Ranks
	if ranks < 1 {
		ranks = 1
	}
	est += int64(ranks) * 1 << 16 // buffers, per-rank bookkeeping
	return est
}

// Version identifies the library release.
const Version = "1.0.0"
