package pagen

import (
	"math"
	"testing"
)

func TestGenerateDefaults(t *testing.T) {
	res, err := Generate(Config{N: 5000, X: 4, Ranks: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantM := int64(6) + (5000-4)*4
	if res.Graph.M() != wantM {
		t.Fatalf("m = %d, want %d", res.Graph.M(), wantM)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 4 {
		t.Fatalf("rank stats = %d", len(res.Ranks))
	}
	if res.Trace != nil {
		t.Fatal("trace collected without request")
	}
}

func TestGenerateSingleRankDefault(t *testing.T) {
	res, err := Generate(Config{N: 100, X: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 1 {
		t.Fatalf("default ranks = %d", len(res.Ranks))
	}
}

func TestGenerateSchemes(t *testing.T) {
	for _, scheme := range []string{"UCP", "LCP", "RRP", "ExactCP", ""} {
		res, err := Generate(Config{N: 2000, X: 2, Ranks: 3, Scheme: scheme, Seed: 5})
		if err != nil {
			t.Fatalf("scheme %q: %v", scheme, err)
		}
		if err := res.Graph.Validate(); err != nil {
			t.Fatalf("scheme %q: %v", scheme, err)
		}
	}
	if _, err := Generate(Config{N: 2000, X: 2, Scheme: "bogus"}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	bad := []Config{
		{N: 0, X: 1},
		{N: 4, X: 4},
		{N: 100, X: 0},
		{N: 100, X: 2, P: 1.5},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGenerateWithTrace(t *testing.T) {
	res, err := Generate(Config{N: 3000, X: 2, Ranks: 4, Seed: 7, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	lengths := ChainLengths(res.Trace)
	if len(lengths) != res.Trace.Slots() {
		t.Fatalf("chain lengths = %d slots", len(lengths))
	}
	max := int32(0)
	for _, l := range lengths {
		if l > max {
			max = l
		}
	}
	if float64(max) > 5*math.Log(3000) {
		t.Fatalf("max chain %d violates Theorem 3.3 bound", max)
	}
}

func TestGenerateSeqMatchesParallelX1(t *testing.T) {
	cfg := Config{N: 1500, X: 1, Seed: 11}
	gSeq, tr, err := GenerateSeq(Config{N: 1500, X: 1, Seed: 11, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("no trace from GenerateSeq")
	}
	cfg.Ranks = 6
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqF := map[int64]int64{}
	for _, e := range gSeq.Edges {
		seqF[e.U] = e.V
	}
	for _, e := range res.Graph.Edges {
		if seqF[e.U] != e.V {
			t.Fatalf("F_%d: parallel %d vs sequential %d", e.U, e.V, seqF[e.U])
		}
	}
}

func TestGenerateBA(t *testing.T) {
	g, err := GenerateBA(Config{N: 5000, X: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gamma < 2 || rep.Gamma > 4 {
		t.Fatalf("gamma = %v", rep.Gamma)
	}
}

func TestAnalyzeDefaultDMin(t *testing.T) {
	res, err := Generate(Config{N: 10000, X: 4, Ranks: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(res.Graph, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GammaDMin < 1 {
		t.Fatalf("default dmin = %d", rep.GammaDMin)
	}
	if rep.Gamma < 2 || rep.Gamma > 4.5 {
		t.Fatalf("gamma = %v", rep.Gamma)
	}
}

func TestNewPartition(t *testing.T) {
	part, err := NewPartition("LCP", 10000, 16)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for r := 0; r < 16; r++ {
		total += part.Size(r)
	}
	if total != 10000 {
		t.Fatalf("sizes sum to %d", total)
	}
	if _, err := NewPartition("nope", 100, 2); err == nil {
		t.Fatal("bad scheme accepted")
	}
}

func TestMemoryEstimate(t *testing.T) {
	base := MemoryEstimate(Config{N: 1_000_000, X: 4, Ranks: 8})
	if base <= 0 {
		t.Fatalf("estimate = %d", base)
	}
	// More nodes, more memory.
	if MemoryEstimate(Config{N: 2_000_000, X: 4, Ranks: 8}) <= base {
		t.Fatal("estimate not monotone in n")
	}
	// Trace costs extra.
	if MemoryEstimate(Config{N: 1_000_000, X: 4, Ranks: 8, RecordTrace: true}) <= base {
		t.Fatal("trace not accounted")
	}
	// Invalid config estimates 0.
	if MemoryEstimate(Config{N: 2, X: 5}) != 0 {
		t.Fatal("invalid config estimated nonzero")
	}
	// Sanity of scale: ~1M nodes, x=4 should be tens to hundreds of MB.
	if base < 50<<20 || base > 1<<30 {
		t.Fatalf("estimate %d bytes implausible", base)
	}
}

func TestEdgesPerSecond(t *testing.T) {
	res, err := Generate(Config{N: 20000, X: 4, Ranks: 2, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if eps := EdgesPerSecond(res); eps <= 0 {
		t.Fatalf("eps = %v", eps)
	}
	if eps := EdgesPerSecond(&Result{Graph: res.Graph}); eps != 0 {
		t.Fatalf("zero-elapsed eps = %v", eps)
	}
}
