module pagen

go 1.22
