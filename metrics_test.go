package pagen_test

import (
	"bytes"
	"math"
	"testing"

	"pagen"
)

// The exported metrics must reproduce the paper's analytical claims on a
// live run: the per-node received-message load follows Lemma 3.4's
// (1-p)(H_{n-1} - H_k) per slot (decreasing in k), and the wait-chain
// histogram Theorem 3.3 bounds is populated and shallow.
func TestMetricsLemma34Curve(t *testing.T) {
	cfg := pagen.Config{N: 100_000, X: 4, Ranks: 4, Seed: 42, CollectNodeLoad: true}
	res, err := pagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := pagen.Metrics(res, cfg)
	if m == nil || m.NodeLoad == nil {
		t.Fatal("no node-load curve collected")
	}
	if len(m.PerRank) != 4 {
		t.Fatalf("%d rank records, want 4", len(m.PerRank))
	}

	// Measured mean load tracks the closed form within 15% on every bin
	// with enough nodes to average out the noise.
	checked := 0
	for _, b := range m.NodeLoad.Bins {
		if b.Nodes < 500 || b.Expected < 0.05 {
			continue
		}
		if rel := math.Abs(b.MeanLoad-b.Expected) / b.Expected; rel > 0.15 {
			t.Errorf("bin [%d,%d): measured %.3f vs Lemma 3.4 %.3f (rel err %.1f%%)",
				b.KLo, b.KHi, b.MeanLoad, b.Expected, 100*rel)
		}
		checked++
	}
	if checked < 5 {
		t.Fatalf("only %d well-populated bins — curve not resolved", checked)
	}
	// And the well-populated tail of the curve decreases in k, the shape
	// Lemma 3.4 predicts (early tiny bins are single-node noise).
	prev := math.Inf(1)
	for _, b := range m.NodeLoad.Bins {
		if b.Nodes < 500 {
			continue
		}
		if b.MeanLoad >= prev {
			t.Errorf("bin [%d,%d): mean load %.3f not below previous %.3f",
				b.KLo, b.KHi, b.MeanLoad, prev)
		}
		prev = b.MeanLoad
	}

	// Wait-chain histograms: populated, and shallow as Theorem 3.3's
	// O(log n) chains imply — the longest observed waiter queue must be
	// far below the per-rank slot count.
	var observed int64
	for _, r := range m.PerRank {
		observed += r.WaitChain.Count
		if r.WaitChain.Max > 1000 {
			t.Errorf("rank %d: wait chain of %d — not shallow", r.Rank, r.WaitChain.Max)
		}
	}
	if observed == 0 {
		t.Fatal("no wait-chain observations recorded")
	}

	// The full record round-trips through its JSON wire form.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := pagen.ReadMetricsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != m.N || len(back.PerRank) != len(m.PerRank) ||
		len(back.NodeLoad.Bins) != len(m.NodeLoad.Bins) {
		t.Fatal("metrics JSON round trip lost data")
	}
}

// Without CollectNodeLoad the run must not pay for load counting and the
// metric record must simply omit the curve.
func TestMetricsWithoutNodeLoad(t *testing.T) {
	cfg := pagen.Config{N: 10_000, X: 2, Ranks: 2, Seed: 1}
	res, err := pagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeLoad != nil {
		t.Fatal("node load collected without opt-in")
	}
	m := pagen.Metrics(res, cfg)
	if m == nil {
		t.Fatal("nil metrics")
	}
	if m.NodeLoad != nil {
		t.Fatal("metrics contain a node-load curve without opt-in")
	}
	if len(m.PerRank) != 2 {
		t.Fatalf("%d rank records, want 2", len(m.PerRank))
	}
}
