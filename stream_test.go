package pagen

import (
	"sync"
	"testing"
)

func TestGenerateStreamDeliversAllEdges(t *testing.T) {
	cfg := Config{N: 10000, X: 4, Ranks: 4, Seed: 21}
	var mu sync.Mutex
	perRank := make(map[int]int64)
	seen := make(map[Edge]bool)
	res, err := GenerateStream(cfg, func(rank int, e Edge) {
		mu.Lock()
		perRank[rank]++
		seen[e.Canonical()] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Fatal("streamed result materialised a graph")
	}
	wantM := int64(6) + (10000-4)*4
	var total int64
	for _, c := range perRank {
		total += c
	}
	if total != wantM {
		t.Fatalf("streamed %d edges, want %d", total, wantM)
	}
	// No duplicate undirected edges across the whole stream.
	if int64(len(seen)) != wantM {
		t.Fatalf("distinct canonical edges %d, want %d", len(seen), wantM)
	}
	// Stats still populated; every rank streamed something.
	if len(perRank) != 4 {
		t.Fatalf("edges came from %d ranks", len(perRank))
	}
	for r, st := range res.Ranks {
		if st.Edges != perRank[r] {
			t.Fatalf("rank %d stats edges %d vs streamed %d", r, st.Edges, perRank[r])
		}
	}
	if EdgesPerSecond(res) <= 0 {
		t.Fatal("EdgesPerSecond zero for streamed result")
	}
}

func TestGenerateStreamMatchesMaterialisedX1(t *testing.T) {
	cfg := Config{N: 3000, X: 1, Ranks: 4, Seed: 23}
	var mu sync.Mutex
	streamed := make(map[int64]int64)
	if _, err := GenerateStream(cfg, func(rank int, e Edge) {
		mu.Lock()
		streamed[e.U] = e.V
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Graph.Edges {
		if streamed[e.U] != e.V {
			t.Fatalf("F_%d: streamed %d vs materialised %d", e.U, streamed[e.U], e.V)
		}
	}
}

func TestGenerateStreamValidatesConfig(t *testing.T) {
	if _, err := GenerateStream(Config{N: 2, X: 2}, func(int, Edge) {}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGenerateStreamDirMatchesInMemory(t *testing.T) {
	cfg := Config{N: 5000, X: 3, Ranks: 2, Seed: 31}
	base, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamCfg := cfg
	streamCfg.StreamDir = t.TempDir()
	streamCfg.StreamBlockEdges = 1024
	res, err := Generate(streamCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Fatal("streamed run materialised a graph")
	}
	g, err := ReadStreamDir(streamCfg.StreamDir, cfg.Ranks)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != base.Graph.N || len(g.Edges) != len(base.Graph.Edges) {
		t.Fatalf("streamed graph is %d nodes / %d edges, want %d / %d",
			g.N, len(g.Edges), base.Graph.N, len(base.Graph.Edges))
	}
	for i := range g.Edges {
		if g.Edges[i] != base.Graph.Edges[i] {
			t.Fatalf("edge %d is %+v, want %+v", i, g.Edges[i], base.Graph.Edges[i])
		}
	}
}

func TestDegreesStreamed(t *testing.T) {
	cfg := Config{N: 8000, X: 4, Ranks: 4, Seed: 41}
	deg, res, err := DegreesStreamed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil {
		t.Fatal("streamed degrees materialised a graph")
	}
	var sum int64
	for _, d := range deg {
		sum += d
	}
	wantM := int64(6) + (8000-4)*4
	if sum != 2*wantM {
		t.Fatalf("degree sum %d, want %d", sum, 2*wantM)
	}
	// Every non-clique node has degree >= x.
	for u := 4; u < 8000; u++ {
		if deg[u] < 4 {
			t.Fatalf("node %d degree %d < x", u, deg[u])
		}
	}
	if _, _, err := DegreesStreamed(Config{N: 1, X: 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
