// Web-graph scenario: the copy model was introduced for web graphs
// (Kumar et al., FOCS'00 — the paper's reference [17]), where the
// power-law exponent gamma is a tunable: gamma depends on the copy
// probability 1-p (paper Section 3.1). This example sweeps p and shows
// the measured exponent moving through the empirically observed web-graph
// range, demonstrating that the generator covers more than plain BA.
//
//	go run ./examples/webgamma
package main

import (
	"fmt"
	"log"

	"pagen"
)

func main() {
	const n = 150_000
	fmt.Println("copy-model exponent sweep (n=150K, x=2, 8 ranks)")
	fmt.Println("p\tgamma\tmax_degree\tnote")
	for _, p := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		res, err := pagen.Generate(pagen.Config{
			N: n, X: 2, P: p, Ranks: 8, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pagen.Analyze(res.Graph, 4)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		switch {
		case p == 0.5:
			note = "exact Barabasi-Albert (gamma -> 3)"
		case p < 0.5:
			note = "copy-heavy: fatter tail, smaller gamma"
		default:
			note = "uniform-heavy: thinner tail, larger gamma"
		}
		fmt.Printf("%.2f\t%.2f\t%d\t%s\n", p, rep.Gamma, rep.MaxDeg, note)
	}
	fmt.Println("\nsmaller p => heavier tail: the copy model generalises BA,")
	fmt.Println("which is why the paper builds its parallel algorithm on it.")
}
