// Model zoo: generate the three classic random-graph families the
// paper's introduction surveys — Erdős–Rényi, Watts–Strogatz small-world
// and Barabási–Albert preferential attachment — at matched size and mean
// degree, and print the structural fingerprints that distinguish them
// (degree tail, clustering, path length, assortativity).
//
//	go run ./examples/modelzoo
package main

import (
	"fmt"
	"log"

	"pagen"
)

const (
	n       = 20_000
	meanDeg = 6.0
)

func main() {
	// PA with x = 3 -> mean degree ~6.
	pa, err := pagen.Generate(pagen.Config{N: n, X: 3, Ranks: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// WS with k = 3 -> degree exactly 6 before rewiring.
	ws, err := pagen.SmallWorld(n, 3, 0.05, 2)
	if err != nil {
		log.Fatal(err)
	}
	// ER with p chosen for mean degree 6.
	er, err := pagen.ErdosRenyiParallel(n, meanDeg/float64(n-1), 8, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model zoo at n=%d, mean degree ~%.0f\n\n", n, meanDeg)
	fmt.Println("model             edges   max_deg  clustering  assortativity  avg_path")
	for _, row := range []struct {
		name string
		g    *pagen.Graph
	}{
		{"preferential-att", pa.Graph},
		{"small-world (WS)", ws},
		{"erdos-renyi (ER)", er},
	} {
		h := row.g.DegreeHistogram()
		maxD, _ := h.Max()
		fmt.Printf("%-17s %7d %8d %11.4f %14.4f %9.2f\n",
			row.name, row.g.M(), maxD,
			pagen.AverageLocalClustering(row.g),
			pagen.DegreeAssortativity(row.g),
			pagen.AveragePathLength(row.g, 8, 9))
	}

	rep, err := pagen.Analyze(pa.Graph, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nonly the PA graph is scale-free: gamma = %.2f (KS %.4f)\n", rep.Gamma, rep.GammaKS)
	fmt.Println("ER's tail is binomial; WS's degrees are nearly uniform around 2k.")
}
