// Generation-as-a-service demo and script-friendly client for the
// pa-serve control plane (docs/API.md): submit jobs, wait on them,
// inspect state and metrics, and download finished graphs — all as
// plain-text output that shell scripts can consume without a JSON
// parser (scripts/loadtest_pa_serve.sh is built on it).
//
//	go run ./examples/serve [-addr http://127.0.0.1:8080] COMMAND [args]
//
// Commands:
//
//	submit   -n N -x X [-p P -seed S -scheme K -job-ranks R -job-workers W
//	         -job-resolve M -job-hub-prefix H -ckpt-every C]   → prints job id
//	wait     ID [-wait-timeout D]   poll until terminal; fails unless done
//	show     ID [-field F]          print the job JSON, or one field
//	list                            one "id state" line per job
//	cancel   ID                     cancel a job
//	preempt  ID                     checkpoint a running job off the pool
//	download ID -o FILE             fetch the merged binary graph
//	metrics                         flattened "key value" lines
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

var addr = flag.String("addr", "http://127.0.0.1:8080", "pa-serve base URL")

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("usage: serve [-addr URL] submit|wait|show|list|cancel|preempt|download|metrics ...")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		submit(rest)
	case "wait":
		wait(rest)
	case "show":
		show(rest)
	case "list":
		list()
	case "cancel":
		post(oneID(cmd, rest), "cancel")
	case "preempt":
		post(oneID(cmd, rest), "preempt")
	case "download":
		download(rest)
	case "metrics":
		metrics()
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

// oneID extracts the single positional job id a subcommand takes.
func oneID(cmd string, args []string) string {
	if len(args) != 1 {
		log.Fatalf("usage: serve %s JOB-ID", cmd)
	}
	return args[0]
}

// call performs one API request and decodes the JSON response,
// exiting with the server's error message on a non-2xx status.
func call(method, path string, body io.Reader) map[string]any {
	req, err := http.NewRequest(method, *addr+path, body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatalf("%s %s: bad response: %v", method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("%s %s: %d: %v", method, path, resp.StatusCode, v["error"])
	}
	return v
}

func submit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		n         = fs.Int64("n", 100000, "number of nodes")
		x         = fs.Int("x", 2, "edges per node")
		p         = fs.Float64("p", 0, "copy-model p (0 = server default)")
		seed      = fs.Uint64("seed", 1, "deterministic seed")
		scheme    = fs.String("scheme", "", "partition scheme (empty = server default)")
		ranks     = fs.Int("job-ranks", 0, "rank slots (0 = server default)")
		workers   = fs.Int("job-workers", 0, "workers per rank (0 = server default)")
		resolve   = fs.String("job-resolve", "", "resolve mode (empty = server default)")
		hubPrefix = fs.Int64("job-hub-prefix", 0, "hub-prefix cache size")
		ckptEvery = fs.Int64("ckpt-every", 0, "checkpoint interval (0 = server default)")
	)
	fs.Parse(args)
	spec := map[string]any{"n": *n, "x": *x, "seed": *seed}
	if *p != 0 {
		spec["p"] = *p
	}
	if *scheme != "" {
		spec["scheme"] = *scheme
	}
	if *ranks != 0 {
		spec["ranks"] = *ranks
	}
	if *workers != 0 {
		spec["workers"] = *workers
	}
	if *resolve != "" {
		spec["resolve"] = *resolve
	}
	if *hubPrefix != 0 {
		spec["hub_prefix"] = *hubPrefix
	}
	if *ckptEvery != 0 {
		spec["checkpoint_every"] = *ckptEvery
	}
	body, _ := json.Marshal(spec)
	j := call("POST", "/jobs", strings.NewReader(string(body)))
	fmt.Println(j["id"])
}

func wait(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: serve wait JOB-ID [-wait-timeout D]")
	}
	id := args[0]
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	timeout := fs.Duration("wait-timeout", 5*time.Minute, "give up after this long")
	fs.Parse(args[1:])
	deadline := time.Now().Add(*timeout)
	for {
		j := call("GET", "/jobs/"+id, nil)
		switch j["state"] {
		case "done":
			fmt.Println("done")
			return
		case "failed", "cancelled":
			log.Fatalf("job %s ended %v: %v", id, j["state"], j["error"])
		}
		if time.Now().After(deadline) {
			log.Fatalf("job %s still %v after %v", id, j["state"], *timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func show(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: serve show JOB-ID [-field F]")
	}
	id := args[0]
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	field := fs.String("field", "", "print only this top-level field")
	fs.Parse(args[1:])
	j := call("GET", "/jobs/"+id, nil)
	if *field != "" {
		printScalar(j[*field])
		return
	}
	out, _ := json.MarshalIndent(j, "", "  ")
	fmt.Println(string(out))
}

func list() {
	j := call("GET", "/jobs", nil)
	jobs, _ := j["jobs"].([]any)
	for _, it := range jobs {
		job := it.(map[string]any)
		fmt.Printf("%v %v\n", job["id"], job["state"])
	}
}

func post(id, verb string) {
	j := call("POST", "/jobs/"+id+"/"+verb, nil)
	fmt.Printf("%v %v\n", j["id"], j["state"])
}

func download(args []string) {
	if len(args) == 0 {
		log.Fatal("usage: serve download JOB-ID -o FILE")
	}
	id := args[0]
	fs := flag.NewFlagSet("download", flag.ExitOnError)
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args[1:])
	if *out == "" {
		log.Fatal("download needs -o FILE")
	}
	resp, err := http.Get(*addr + "/jobs/" + id + "/download")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		log.Fatalf("download %s: %d: %s", id, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	nb, err := io.Copy(f, resp.Body)
	if err == nil {
		err = f.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s %d bytes\n", *out, nb)
}

// metrics prints the /metrics document flattened to sorted
// "dotted.key value" lines — grep/awk fodder for the load-test's
// reconciliation checks.
func metrics() {
	m := call("GET", "/metrics", nil)
	var lines []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch t := v.(type) {
		case map[string]any:
			for k, sub := range t {
				key := k
				if prefix != "" {
					key = prefix + "." + k
				}
				walk(key, sub)
			}
		case []any:
			// Bucket arrays: one summable line keeps the output flat.
			lines = append(lines, fmt.Sprintf("%s.len %d", prefix, len(t)))
		default:
			lines = append(lines, fmt.Sprintf("%s %v", prefix, formatScalar(v)))
		}
	}
	walk("", m)
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

// formatScalar renders integral float64s (the JSON decoder's numbers)
// without an exponent or decimal point.
func formatScalar(v any) string {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%v", v)
}

func printScalar(v any) {
	fmt.Println(formatScalar(v))
}
