// Quickstart: generate a scale-free network with the parallel
// preferential-attachment generator and print its headline statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pagen"
)

func main() {
	// 100K nodes, 4 edges per node, 8 simulated processors with
	// round-robin partitioning (the paper's best-performing scheme).
	res, err := pagen.Generate(pagen.Config{
		N:     100_000,
		X:     4,
		Ranks: 8,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}

	g := res.Graph
	fmt.Printf("generated %d nodes, %d edges in %v (%.3g edges/s)\n",
		g.N, g.M(), res.Elapsed, pagen.EdgesPerSecond(res))

	// Verify the scale-free property: fit the power-law exponent.
	rep, err := pagen.Analyze(g, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree range [%d, %d], mean %.2f\n", rep.MinDeg, rep.MaxDeg, rep.MeanDeg)
	fmt.Printf("power-law exponent gamma = %.2f (KS %.4f) — paper reports 2.7 at n=1e9\n",
		rep.Gamma, rep.GammaKS)

	// Per-rank load summary (the paper's Section 4.6 measure).
	fmt.Println("\nrank  nodes  requests_sent  requests_recv  total_load")
	for _, st := range res.Ranks {
		fmt.Printf("%4d %6d %14d %14d %11d\n",
			st.Rank, st.Nodes, st.Comm.RequestsSent, st.Comm.RequestsRecv, st.TotalLoad())
	}
}
