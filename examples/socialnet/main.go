// Social-network scenario: generate a scale-free "follower" graph and
// study the properties that motivate the preferential-attachment model —
// hub emergence, and the resilience asymmetry of scale-free networks
// (robust to random failures, fragile to targeted hub attacks; Albert,
// Jeong & Barabási 2000, reference [1] of the paper).
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"sort"

	"pagen"
	"pagen/internal/xrand"
)

const (
	nUsers = 200_000
	x      = 2
)

func main() {
	res, err := pagen.Generate(pagen.Config{N: nUsers, X: x, Ranks: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	g := res.Graph
	fmt.Printf("social graph: %d users, %d relationships\n\n", g.N, g.M())

	// Hubs: the highest-degree users.
	degrees := g.Degrees()
	type hub struct {
		id  int64
		deg int64
	}
	hubs := make([]hub, g.N)
	for i, d := range degrees {
		hubs[i] = hub{int64(i), d}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].deg > hubs[j].deg })
	fmt.Println("top 10 hubs (user, degree):")
	for _, h := range hubs[:10] {
		fmt.Printf("  user %7d: %6d connections\n", h.id, h.deg)
	}
	// Scale-free signature: early users dominate the hub list.
	early := 0
	for _, h := range hubs[:10] {
		if h.id < nUsers/100 {
			early++
		}
	}
	fmt.Printf("%d of the top-10 hubs are among the first 1%% of users (first-mover advantage)\n\n", early)

	// Resilience experiment: remove 15% of users at random versus the
	// top 15% hubs, and compare the surviving giant component.
	removeFrac := 0.15
	k := int(float64(nUsers) * removeFrac)

	csr := g.ToCSR()
	randomDead := make(map[int64]bool, k)
	rng := xrand.New(99)
	for len(randomDead) < k {
		randomDead[rng.Int64n(nUsers)] = true
	}
	giantRandom := csr.GiantComponentSize(func(u int64) bool { return randomDead[u] })

	hubDead := make(map[int64]bool, k)
	for _, h := range hubs[:k] {
		hubDead[h.id] = true
	}
	giantHubs := csr.GiantComponentSize(func(u int64) bool { return hubDead[u] })

	fmt.Printf("resilience (removing %.0f%% of users):\n", removeFrac*100)
	fmt.Printf("  random failures : giant component keeps %5.1f%% of users\n",
		100*float64(giantRandom)/float64(nUsers))
	fmt.Printf("  targeted attack : giant component keeps %5.1f%% of users\n",
		100*float64(giantHubs)/float64(nUsers))
	fmt.Println("scale-free networks survive random failure but fracture under hub attack.")
}
