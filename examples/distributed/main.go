// Distributed-memory demo: spawns pa-tcp worker processes — one OS
// process per rank, exactly like MPI ranks in the paper — connected over
// localhost TCP, then merges their edge shards and validates the result.
//
//	go run ./examples/distributed
//
// The same worker binary runs across real machines by listing each
// host's address in -addrs.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"pagen/internal/graph"
	"pagen/internal/stats"
)

const (
	ranks = 3
	n     = 50_000
	x     = 4
)

func main() {
	workDir, err := os.MkdirTemp("", "pagen-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workDir)

	// Build the worker binary.
	worker := filepath.Join(workDir, "pa-tcp")
	build := exec.Command("go", "build", "-o", worker, "pagen/cmd/pa-tcp")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		log.Fatal("building pa-tcp: ", err)
	}

	addrs := make([]string, ranks)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("127.0.0.1:%d", 42800+i)
	}
	addrList := strings.Join(addrs, ",")

	fmt.Printf("spawning %d worker processes (n=%d, x=%d, RRP partitioning)...\n", ranks, n, x)
	procs := make([]*exec.Cmd, ranks)
	shardPaths := make([]string, ranks)
	for r := 0; r < ranks; r++ {
		shardPaths[r] = filepath.Join(workDir, fmt.Sprintf("shard%d.bin", r))
		procs[r] = exec.Command(worker,
			"-rank", fmt.Sprint(r),
			"-addrs", addrList,
			"-n", fmt.Sprint(n),
			"-x", fmt.Sprint(x),
			"-seed", "17",
			"-o", shardPaths[r],
			"-stats",
		)
		procs[r].Stderr = os.Stderr
		if err := procs[r].Start(); err != nil {
			log.Fatal(err)
		}
	}
	for r, p := range procs {
		if err := p.Wait(); err != nil {
			log.Fatalf("rank %d failed: %v", r, err)
		}
	}

	// Merge the shards into one graph.
	shards := make([][]graph.Edge, ranks)
	for r, path := range shardPaths {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		sg, err := graph.ReadBinary(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		shards[r] = sg.Edges
		fmt.Printf("rank %d shard: %d edges\n", r, len(sg.Edges))
	}
	g := graph.Merge(n, shards...)

	wantM := int64(x*(x-1)/2 + (n-x)*x)
	fmt.Printf("merged graph: %d edges (expected %d)\n", g.M(), wantM)
	if g.M() != wantM {
		log.Fatal("edge count mismatch")
	}
	if err := g.Validate(); err != nil {
		log.Fatal("validation failed: ", err)
	}
	fit, err := stats.PowerLawMLE(g.Degrees(), int64(2*x))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validated: no self-loops, no parallel edges; gamma = %.2f\n", fit.Gamma)
	fmt.Println("distributed-memory generation across OS processes succeeded.")
}
