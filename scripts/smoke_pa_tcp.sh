#!/bin/sh
# smoke_pa_tcp.sh — 4-rank pa-tcp localhost smoke test: real OS
# processes, real TCP mesh, the full generation protocol plus the
# post-run collective sequence (the stats gather that the unsequenced
# tag protocol used to kill at 4 ranks), plus per-rank metrics export.
# Each rank runs with 2 generation workers, so the worker-sharded loop
# (inbox dispatch, striped send buffers, per-worker Done accounting) is
# exercised against the real TCP transport, not just the in-process one.
# Exits non-zero if any rank fails, hangs past the timeout, or the
# output shards don't union to the expected edge count.
set -eu

N=${N:-50000}
X=${X:-4}
RANKS=4
WORKERS=${WORKERS:-2}
BASE_PORT=${BASE_PORT:-9700}
TIMEOUT=${TIMEOUT:-120}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

go build -o "$workdir/pa-tcp" ./cmd/pa-tcp

addrs=""
i=0
while [ $i -lt $RANKS ]; do
    addrs="$addrs${addrs:+,}127.0.0.1:$((BASE_PORT + i))"
    i=$((i + 1))
done

pids=""
i=1
while [ $i -lt $RANKS ]; do
    timeout "$TIMEOUT" "$workdir/pa-tcp" -rank $i -addrs "$addrs" \
        -n "$N" -x "$X" -workers "$WORKERS" -o "$workdir/shard$i.bin" \
        -metrics "$workdir/metrics$i.json" &
    pids="$pids $!"
    i=$((i + 1))
done
timeout "$TIMEOUT" "$workdir/pa-tcp" -rank 0 -addrs "$addrs" \
    -n "$N" -x "$X" -workers "$WORKERS" -o "$workdir/shard0.bin" -stats \
    -metrics "$workdir/metrics0.json"

for pid in $pids; do
    wait "$pid"
done

# Every rank must have produced its shard and metrics file.
i=0
while [ $i -lt $RANKS ]; do
    for f in "$workdir/shard$i.bin" "$workdir/metrics$i.json"; do
        if [ ! -s "$f" ]; then
            echo "rank $i produced no $f" >&2
            exit 1
        fi
    done
    i=$((i + 1))
done

echo "pa-tcp smoke: $RANKS ranks x $WORKERS workers over localhost completed (n=$N, x=$X)"
