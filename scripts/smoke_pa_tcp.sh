#!/bin/sh
# smoke_pa_tcp.sh — 4-rank pa-tcp localhost smoke test: real OS
# processes, real TCP mesh, the full generation protocol plus the
# post-run collective sequence (the stats gather that the unsequenced
# tag protocol used to kill at 4 ranks), plus per-rank metrics export.
# Each rank runs with 2 generation workers, so the worker-sharded loop
# (inbox dispatch, striped send buffers, per-worker Done accounting) is
# exercised against the real TCP transport, not just the in-process one.
# Exits non-zero if any rank fails, hangs past the timeout, or the
# output shards don't union to the expected edge count.
#
# With "resume" as the first argument the script instead runs the
# checkpoint/restart smoke: a supervised baseline run, then a second
# supervised run where one rank is killed after the first checkpoint
# epoch commits, letting the supervisor restart the cluster from the
# snapshots. The resumed run's shards must be byte-identical to the
# uninterrupted baseline.
#
# With "chaos" as the first argument it runs the kill-mid-epoch smoke:
# a supervised run checkpointing a base+delta chain
# (-checkpoint-full-every) where one rank is killed while the second
# checkpoint epoch is only partially committed across the cluster —
# i.e. mid-epoch, with delta publishes in flight in the background
# writers. The supervisor restarts the cluster from whatever the
# directory holds (committed chain prefix, possibly torn newest
# members), and the resumed run's shards must be byte-identical to an
# uninterrupted baseline.
#
# With "stream" as the first argument it runs the external-memory
# smoke: a supervised run streaming compressed edge shards
# (-stream-dir, docs/SHARD_FORMAT.md) is killed after the first
# checkpoint epoch commits and restarted by the supervisor; the
# recovered shard directory must carry the same edge-stream
# fingerprint as an in-memory run of the same configuration, and
# converting it with pa-analyze -export-binary must reproduce the
# in-memory binary output byte for byte.
#
# With "shm" as the first argument it runs the in-process transport
# smoke instead: pagen over the shared-memory transport (message
# batches by reference, no codec) against the codec-ablation local
# transport, at 1 and 2 workers per rank — all four outputs must be
# byte-identical (DESIGN.md §13.1).
set -eu

MODE=${1:-basic}
N=${N:-50000}
X=${X:-4}
RANKS=4
WORKERS=${WORKERS:-2}
BASE_PORT=${BASE_PORT:-9700}
TIMEOUT=${TIMEOUT:-120}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

if [ "$MODE" = shm ]; then
    # In-process transport smoke: the shm fast path and the local codec
    # path must agree byte for byte, at every worker count.
    SEED=${SEED:-7}
    go build -o "$workdir/pagen" ./cmd/pagen

    ref=""
    for tr in shm local; do
        for w in 1 2; do
            out="$workdir/$tr-w$w.bin"
            timeout "$TIMEOUT" "$workdir/pagen" -n "$N" -x "$X" -seed "$SEED" \
                -ranks "$RANKS" -workers "$w" -transport "$tr" \
                -format binary -o "$out"
            if [ -z "$ref" ]; then
                ref="$out"
            else
                cmp "$ref" "$out" \
                    || { echo "output differs: $ref vs $out" >&2; exit 1; }
            fi
        done
    done
    echo "pagen shm smoke: $RANKS ranks, shm and local transports at 1 and 2 workers, all outputs byte-identical (n=$N, x=$X)"
    exit 0
fi

go build -o "$workdir/pa-tcp" ./cmd/pa-tcp

addrs=""
i=0
while [ $i -lt $RANKS ]; do
    addrs="$addrs${addrs:+,}127.0.0.1:$((BASE_PORT + i))"
    i=$((i + 1))
done

if [ "$MODE" = resume ]; then
    # Checkpoint/restart smoke. Scale n up and the epoch cadence down so
    # the first checkpoint epoch commits well before the run finishes,
    # even on slow CI machines (commit time and run time scale together).
    RN=${RN:-800000}
    EVERY=${EVERY:-60000}
    SEED=${SEED:-7}

    echo "resume smoke: baseline supervised run (n=$RN, x=3)"
    timeout "$TIMEOUT" "$workdir/pa-tcp" -supervise -addrs "$addrs" \
        -n "$RN" -x 3 -seed "$SEED" -workers "$WORKERS" \
        -checkpoint-dir "$workdir/ck-base" -checkpoint-every "$EVERY" \
        -shard-dir "$workdir/base" 2>"$workdir/base.log"

    echo "resume smoke: kill-and-resume supervised run"
    timeout "$TIMEOUT" "$workdir/pa-tcp" -supervise -addrs "$addrs" \
        -n "$RN" -x 3 -seed "$SEED" -workers "$WORKERS" \
        -checkpoint-dir "$workdir/ck-kill" -checkpoint-every "$EVERY" \
        -shard-dir "$workdir/kill" 2>"$workdir/kill.log" &
    sup=$!

    # Wait until every rank has committed its first epoch, then kill
    # rank 2. The bracketed [2] keeps pkill from matching this script's
    # own command line.
    polls=0
    committed=0
    while kill -0 "$sup" 2>/dev/null; do
        committed=$(ls "$workdir/ck-kill" 2>/dev/null | grep -c '\.ckpt$' || true)
        [ "$committed" -ge "$RANKS" ] && break
        polls=$((polls + 1))
        sleep 0.05
    done
    if [ "$committed" -lt "$RANKS" ]; then
        echo "run finished before the first checkpoint epoch committed;" >&2
        echo "raise RN or lower EVERY so the kill lands mid-run" >&2
        exit 1
    fi
    pkill -f -- "-rank [2] -addrs 127.0.0.1:$BASE_PORT" \
        || { echo "failed to kill rank 2" >&2; exit 1; }
    echo "resume smoke: killed rank 2 after $committed snapshots ($polls polls)"

    wait "$sup" || { echo "supervisor failed:" >&2; cat "$workdir/kill.log" >&2; exit 1; }
    grep -q 'restart 1/' "$workdir/kill.log" \
        || { echo "supervisor log records no restart" >&2; cat "$workdir/kill.log" >&2; exit 1; }

    i=0
    while [ $i -lt $RANKS ]; do
        cmp "$workdir/base/shard-$i-of-$RANKS.pag" "$workdir/kill/shard-$i-of-$RANKS.pag" \
            || { echo "shard $i differs between baseline and resumed run" >&2; exit 1; }
        i=$((i + 1))
    done
    echo "pa-tcp resume smoke: killed rank restarted from checkpoint; all $RANKS shards byte-identical to uninterrupted baseline"
    exit 0
fi

if [ "$MODE" = chaos ]; then
    # Kill-mid-epoch smoke over a base+delta chain. The kill fires when
    # the second epoch is partially committed (some ranks' snapshots on
    # disk, others still capturing or mid-publish), so the restart must
    # negotiate past an incomplete epoch and replay a delta chain.
    RN=${RN:-800000}
    EVERY=${EVERY:-40000}
    FULL_EVERY=${FULL_EVERY:-4}
    SEED=${SEED:-7}

    echo "chaos smoke: baseline supervised run (n=$RN, x=3, full every $FULL_EVERY epochs)"
    timeout "$TIMEOUT" "$workdir/pa-tcp" -supervise -addrs "$addrs" \
        -n "$RN" -x 3 -seed "$SEED" -workers "$WORKERS" \
        -checkpoint-dir "$workdir/ck-base" -checkpoint-every "$EVERY" \
        -checkpoint-full-every "$FULL_EVERY" \
        -shard-dir "$workdir/base" 2>"$workdir/base.log"

    echo "chaos smoke: kill-mid-epoch supervised run"
    timeout "$TIMEOUT" "$workdir/pa-tcp" -supervise -addrs "$addrs" \
        -n "$RN" -x 3 -seed "$SEED" -workers "$WORKERS" \
        -checkpoint-dir "$workdir/ck-chaos" -checkpoint-every "$EVERY" \
        -checkpoint-full-every "$FULL_EVERY" \
        -shard-dir "$workdir/chaos" 2>"$workdir/chaos.log" &
    sup=$!

    # Wait for the second epoch to be PARTIALLY committed: more
    # snapshots than one full epoch's worth, fewer than two — the
    # cluster is mid-epoch, with background publishes in flight. If the
    # window is too narrow to observe, fall back to killing after the
    # first epoch (still a valid chaos point; the run stays mid-chain).
    polls=0
    committed=0
    while kill -0 "$sup" 2>/dev/null; do
        committed=$(ls "$workdir/ck-chaos" 2>/dev/null | grep -c '\.ckpt$' || true)
        [ "$committed" -gt "$RANKS" ] && [ "$committed" -lt $((2 * RANKS)) ] && break
        [ "$committed" -ge $((2 * RANKS)) ] && break
        polls=$((polls + 1))
        sleep 0.02
    done
    if [ "$committed" -le "$RANKS" ]; then
        echo "run finished before a second checkpoint epoch started;" >&2
        echo "raise RN or lower EVERY so the kill lands mid-epoch" >&2
        exit 1
    fi
    pkill -f -- "-rank [2] -addrs 127.0.0.1:$BASE_PORT" \
        || { echo "failed to kill rank 2" >&2; exit 1; }
    echo "chaos smoke: killed rank 2 mid-epoch at $committed snapshots ($polls polls)"

    wait "$sup" || { echo "supervisor failed:" >&2; cat "$workdir/chaos.log" >&2; exit 1; }
    grep -q 'restart 1/' "$workdir/chaos.log" \
        || { echo "supervisor log records no restart" >&2; cat "$workdir/chaos.log" >&2; exit 1; }

    i=0
    while [ $i -lt $RANKS ]; do
        cmp "$workdir/base/shard-$i-of-$RANKS.pag" "$workdir/chaos/shard-$i-of-$RANKS.pag" \
            || { echo "shard $i differs between baseline and resumed run" >&2; exit 1; }
        i=$((i + 1))
    done
    echo "pa-tcp chaos smoke: rank killed mid-epoch over a delta chain, restarted from the committed prefix; all $RANKS shards byte-identical to uninterrupted baseline"
    exit 0
fi

if [ "$MODE" = stream ]; then
    # External-memory streaming smoke: kill + resume a streamed
    # supervised run, then check the recovered shards against an
    # in-memory run of the same configuration.
    RN=${RN:-800000}
    EVERY=${EVERY:-60000}
    SEED=${SEED:-7}

    go build -o "$workdir/pagen" ./cmd/pagen
    go build -o "$workdir/pa-analyze" ./cmd/pa-analyze

    echo "stream smoke: in-memory reference run (n=$RN, x=3)"
    timeout "$TIMEOUT" "$workdir/pagen" -n "$RN" -x 3 -seed "$SEED" \
        -ranks "$RANKS" -workers "$WORKERS" -format binary \
        -o "$workdir/mem.bin"
    memfp=$("$workdir/pa-analyze" -i "$workdir/mem.bin" -format binary \
        -fingerprint | awk '{print $2}')

    echo "stream smoke: kill-and-resume supervised streamed run"
    timeout "$TIMEOUT" "$workdir/pa-tcp" -supervise -addrs "$addrs" \
        -n "$RN" -x 3 -seed "$SEED" -workers "$WORKERS" \
        -checkpoint-dir "$workdir/ck-stream" -checkpoint-every "$EVERY" \
        -stream-dir "$workdir/shards" 2>"$workdir/stream.log" &
    sup=$!

    polls=0
    committed=0
    while kill -0 "$sup" 2>/dev/null; do
        committed=$(ls "$workdir/ck-stream" 2>/dev/null | grep -c '\.ckpt$' || true)
        [ "$committed" -ge "$RANKS" ] && break
        polls=$((polls + 1))
        sleep 0.05
    done
    if [ "$committed" -lt "$RANKS" ]; then
        echo "run finished before the first checkpoint epoch committed;" >&2
        echo "raise RN or lower EVERY so the kill lands mid-run" >&2
        exit 1
    fi
    pkill -f -- "-rank [2] -addrs 127.0.0.1:$BASE_PORT" \
        || { echo "failed to kill rank 2" >&2; exit 1; }
    echo "stream smoke: killed rank 2 after $committed snapshots ($polls polls)"

    wait "$sup" || { echo "supervisor failed:" >&2; cat "$workdir/stream.log" >&2; exit 1; }
    grep -q 'restart 1/' "$workdir/stream.log" \
        || { echo "supervisor log records no restart" >&2; cat "$workdir/stream.log" >&2; exit 1; }

    streamfp=$("$workdir/pa-analyze" -stream-dir "$workdir/shards" \
        -ranks "$RANKS" -fingerprint | awk '{print $2}')
    [ "$streamfp" = "$memfp" ] \
        || { echo "fingerprint mismatch: streamed $streamfp vs in-memory $memfp" >&2; exit 1; }

    "$workdir/pa-analyze" -stream-dir "$workdir/shards" -ranks "$RANKS" \
        -export-binary "$workdir/stream.bin" 2>/dev/null
    cmp "$workdir/mem.bin" "$workdir/stream.bin" \
        || { echo "exported streamed graph differs from in-memory binary output" >&2; exit 1; }

    echo "pa-tcp stream smoke: killed rank restarted from checkpoint; recovered shards fingerprint-equal ($streamfp) and byte-identical to the in-memory run"
    exit 0
fi

pids=""
i=1
while [ $i -lt $RANKS ]; do
    timeout "$TIMEOUT" "$workdir/pa-tcp" -rank $i -addrs "$addrs" \
        -n "$N" -x "$X" -workers "$WORKERS" -o "$workdir/shard$i.bin" \
        -metrics "$workdir/metrics$i.json" &
    pids="$pids $!"
    i=$((i + 1))
done
timeout "$TIMEOUT" "$workdir/pa-tcp" -rank 0 -addrs "$addrs" \
    -n "$N" -x "$X" -workers "$WORKERS" -o "$workdir/shard0.bin" -stats \
    -metrics "$workdir/metrics0.json"

for pid in $pids; do
    wait "$pid"
done

# Every rank must have produced its shard and metrics file.
i=0
while [ $i -lt $RANKS ]; do
    for f in "$workdir/shard$i.bin" "$workdir/metrics$i.json"; do
        if [ ! -s "$f" ]; then
            echo "rank $i produced no $f" >&2
            exit 1
        fi
    done
    i=$((i + 1))
done

# Second pass with the hub-prefix cache disabled (the first pass ran
# with the default auto-sized cache). The cache elides traffic, never
# output, so every shard must be byte-identical across the two runs.
pids=""
i=1
while [ $i -lt $RANKS ]; do
    timeout "$TIMEOUT" "$workdir/pa-tcp" -rank $i -addrs "$addrs" \
        -n "$N" -x "$X" -workers "$WORKERS" -hub-prefix -1 \
        -o "$workdir/shard$i.off.bin" &
    pids="$pids $!"
    i=$((i + 1))
done
timeout "$TIMEOUT" "$workdir/pa-tcp" -rank 0 -addrs "$addrs" \
    -n "$N" -x "$X" -workers "$WORKERS" -hub-prefix -1 \
    -o "$workdir/shard0.off.bin"

for pid in $pids; do
    wait "$pid"
done

i=0
while [ $i -lt $RANKS ]; do
    cmp "$workdir/shard$i.bin" "$workdir/shard$i.off.bin" \
        || { echo "shard $i differs between cache-on and cache-off runs" >&2; exit 1; }
    i=$((i + 1))
done

# Third pass in recomputation resolve mode: non-local dependencies are
# replayed locally instead of asked over the wire, so the mode changes
# traffic radically — and must not change output. Every shard must be
# byte-identical to the wire-protocol passes.
pids=""
i=1
while [ $i -lt $RANKS ]; do
    timeout "$TIMEOUT" "$workdir/pa-tcp" -rank $i -addrs "$addrs" \
        -n "$N" -x "$X" -workers "$WORKERS" -resolve recompute \
        -o "$workdir/shard$i.rc.bin" &
    pids="$pids $!"
    i=$((i + 1))
done
timeout "$TIMEOUT" "$workdir/pa-tcp" -rank 0 -addrs "$addrs" \
    -n "$N" -x "$X" -workers "$WORKERS" -resolve recompute \
    -o "$workdir/shard0.rc.bin"

for pid in $pids; do
    wait "$pid"
done

i=0
while [ $i -lt $RANKS ]; do
    cmp "$workdir/shard$i.bin" "$workdir/shard$i.rc.bin" \
        || { echo "shard $i differs between wire and recompute resolve modes" >&2; exit 1; }
    i=$((i + 1))
done

echo "pa-tcp smoke: $RANKS ranks x $WORKERS workers over localhost completed (n=$N, x=$X); cache-on, cache-off and recompute shards byte-identical"
