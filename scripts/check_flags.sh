#!/bin/sh
# check_flags.sh — keep the CLI documentation honest against the
# binaries' actual -h output, in both directions:
#
#   1. No stale references: every flag the prose documentation mentions
#      in backticks (`-foo` in README.md, DESIGN.md, docs/*.md) must be
#      defined by at least one cmd/ binary.
#   2. No undocumented flags: every flag a binary defines must be
#      mentioned either in that binary's own doc comment (the // block
#      `go doc` shows) or in the prose documentation above.
#   3. pa-serve's HTTP surface: every route literal the daemon
#      registers must be documented in docs/API.md, and every route
#      docs/API.md mentions must be served — an endpoint cannot be
#      added, renamed or removed without updating the API reference.
#
# Run from the repository root; exits non-zero listing every stale or
# undocumented flag or endpoint.
set -eu

bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT

go build -o "$bindir" ./cmd/...

fail=0
docs="README.md DESIGN.md docs/*.md"

# All defined flags, one "-name" per line, across every binary.
defined="$bindir/defined"
for b in "$bindir"/*; do
    [ -x "$b" ] || continue
    "$b" -h 2>&1 | awk '/^  -/{print $1}'
done | sort -u >"$defined"

# Direction 1: backticked flag references in the prose docs must exist.
# `-resolve=recompute` style references are trimmed to the flag name;
# go-toolchain flags the docs quote (`go test -race` etc.) are exempt.
toolchain='-race -bench -benchmem -benchtime -run -count -cpuprofile'
# shellcheck disable=SC2086
grep -ho '`-[a-zA-Z][a-zA-Z-]*[=a-zA-Z.]*`' $docs \
    | sed 's/`//g; s/=.*//' | sort -u | while read -r tok; do
    case " $toolchain " in *" $tok "*) continue ;; esac
    if ! grep -qx -- "$tok" "$defined"; then
        echo "stale flag reference: docs mention $tok, no binary defines it" >&2
        echo "$tok" >>"$bindir/stale"
    fi
done
[ -f "$bindir/stale" ] && fail=1

# Direction 2: every defined flag is documented somewhere the user
# reads — the binary's doc comment or the prose docs.
for b in "$bindir"/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    [ -d "cmd/$name" ] || continue
    doccmt="$bindir/doccmt"
    # The leading // comment block of the file carrying the doc comment.
    awk '/^\/\//{print; next} /^package /{exit}' "cmd/$name/"*.go >"$doccmt"
    for flag in $("$b" -h 2>&1 | awk '/^  -/{print $1}'); do
        if grep -q -- "$flag" "$doccmt"; then
            continue
        fi
        # shellcheck disable=SC2086
        if grep -q -- "\`$flag\`\|$flag " $docs; then
            continue
        fi
        echo "undocumented flag: $name $flag appears in -h only" >&2
        fail=1
    done
done

# Direction 3: the pa-serve HTTP surface. Route literals are the Go
# 1.22 mux patterns ("METHOD /path") registered in cmd/pa-serve;
# docs/API.md must mention each one in backticks, and must not mention
# any the daemon does not serve.
served="$bindir/served"
for f in cmd/pa-serve/*.go; do
    case "$f" in *_test.go) continue ;; esac
    grep -ho '"\(GET\|POST\|PUT\|PATCH\|DELETE\) /[^"]*"' "$f" || true
done | tr -d '"' | sort -u >"$served"

documented="$bindir/documented"
grep -ho '`\(GET\|POST\|PUT\|PATCH\|DELETE\) /[^`]*`' docs/API.md \
    | tr -d '\`' | sort -u >"$documented"

if ! cmp -s "$served" "$documented"; then
    comm -23 "$served" "$documented" | while read -r r; do
        echo "undocumented endpoint: pa-serve serves \"$r\", docs/API.md never mentions it" >&2
    done
    comm -13 "$served" "$documented" | while read -r r; do
        echo "stale endpoint: docs/API.md documents \"$r\", pa-serve does not serve it" >&2
    done
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "cli flags: docs and -h agree for all $(ls cmd | wc -l | tr -d ' ') binaries; pa-serve routes match docs/API.md ($(wc -l <"$served" | tr -d ' ') endpoints)"
