#!/bin/sh
# check_pkgdoc.sh — assert every internal/ package (and the root package)
# carries a godoc package comment ("// Package <name> ..."), so the
# documented-architecture guarantee in README.md stays true. Run from the
# repository root; exits non-zero listing any undocumented package.
set -eu

fail=0
for dir in internal/*/; do
    pkg=$(basename "$dir")
    if ! grep -qs "^// Package $pkg " "$dir"*.go; then
        echo "missing package comment: $dir (want '// Package $pkg ...')" >&2
        fail=1
    fi
done
if ! grep -qs "^// Package pagen " ./*.go; then
    echo "missing package comment: root package pagen" >&2
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "package comments: all present"
