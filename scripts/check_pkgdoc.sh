#!/bin/sh
# check_pkgdoc.sh — assert every package in the repository carries a
# real godoc comment, so the documented-architecture guarantee in
# README.md stays true:
#
#   - every internal/ package: a "// Package <name> ..." block,
#   - every cmd/ program:      a "// Command <name> ..." block,
#   - the root package pagen:  a "// Package pagen ..." block,
#   - every examples/ program: a leading // block on its main file
#     (the text `go doc ./examples/<name>` shows),
#
# and every block must be substantive — at least MIN_LINES comment
# lines — so a one-line stub dropped in to silence the checker fails
# too. Run from the repository root; exits non-zero listing every
# undocumented or under-documented package.
set -eu

MIN_LINES=3
fail=0

# block_lines FILE PREFIX — length (in comment lines) of the doc block
# starting at the "// PREFIX <name>" line.
block_lines() {
    awk -v pre="^// $2 " '
        $0 ~ pre { found = 1 }
        found && /^\/\// { c++ }
        found && !/^\/\// { exit }
        END { print c + 0 }
    ' "$1"
}

check() { # check DIR NAME PREFIX
    dir=$1 name=$2 prefix=$3
    f=$(grep -ls "^// $prefix $name " "$dir"*.go | head -1 || true)
    if [ -z "$f" ]; then
        echo "missing package comment: $dir (want '// $prefix $name ...')" >&2
        fail=1
        return
    fi
    lines=$(block_lines "$f" "$prefix")
    if [ "$lines" -lt "$MIN_LINES" ]; then
        echo "stub package comment: $f has $lines comment lines, want >= $MIN_LINES" >&2
        fail=1
    fi
}

# check_main DIR — examples carry their doc as the contiguous // block
# immediately above the `package main` clause.
check_main() {
    dir=$1
    f=$(grep -l '^package main$' "$dir"*.go | head -1 || true)
    if [ -z "$f" ]; then
        echo "missing main package: $dir has no 'package main' file" >&2
        fail=1
        return
    fi
    lines=$(awk '/^\/\//{c++; next} /^package main$/{print c + 0; exit} {c = 0}' "$f")
    if [ "${lines:-0}" -lt "$MIN_LINES" ]; then
        echo "stub doc comment: $f has ${lines:-0} comment lines before 'package main', want >= $MIN_LINES" >&2
        fail=1
    fi
}

for dir in internal/*/; do
    check "$dir" "$(basename "$dir")" Package
done
for dir in cmd/*/; do
    check "$dir" "$(basename "$dir")" Command
done
for dir in examples/*/; do
    check_main "$dir"
done
check "./" pagen Package

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "package comments: all present and substantive"
