#!/bin/sh
# loadtest_pa_serve.sh — end-to-end load test of the pa-serve control
# plane (cmd/pa-serve + internal/jobqueue), the service-layer
# counterpart of smoke_pa_tcp.sh. Two phases against one daemon running
# real pa-tcp rank processes:
#
#   1. Crash/resume: submit a checkpointed 2-rank job, kill one of its
#      rank processes after the first checkpoint epoch commits, and
#      assert the queue respawns the job (restarts >= 1, state done —
#      not failed) with a downloaded merged graph byte-identical to a
#      direct pagen run of the same parameters.
#   2. Concurrency/starvation: fill the pool with small jobs, submit a
#      full-pool streamed job plus more small jobs behind it, and
#      assert every job completes, the big job's download is intact,
#      the max queue wait stays under MAX_WAIT_NS (the DESIGN.md §14
#      bound: ReserveAfter + drain makespan), and the /metrics counters
#      reconcile: submitted == completed + failed + cancelled + queued
#      + running + checkpointed.
#
# Finishes with a SIGTERM graceful-shutdown check. Set RESULTS_JSON to
# also write a machine-readable summary (results/LOADTEST_pa_serve.json
# in CI). Exits non-zero on the first violated assertion.
set -eu

HTTP_PORT=${HTTP_PORT:-9850}
BASE_PORT=${BASE_PORT:-9860}
SLOTS=${SLOTS:-4}
SMALL_JOBS=${SMALL_JOBS:-8}
TIMEOUT=${TIMEOUT:-300}
# Queue-wait ceiling (ns): 5s ReserveAfter + generous drain makespan.
MAX_WAIT_NS=${MAX_WAIT_NS:-120000000000}
RESULTS_JSON=${RESULTS_JSON:-}

workdir=$(mktemp -d)
srv=""
cleanup() {
    [ -n "$srv" ] && kill "$srv" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/pa-serve" ./cmd/pa-serve
go build -o "$workdir/pa-tcp" ./cmd/pa-tcp
go build -o "$workdir/pagen" ./cmd/pagen
go build -o "$workdir/serve" ./examples/serve

"$workdir/pa-serve" -listen "127.0.0.1:$HTTP_PORT" -data-dir "$workdir/data" \
    -slots "$SLOTS" -queue-cap 64 -reserve-after 5s \
    -runner process -pa-tcp "$workdir/pa-tcp" \
    -port-base "$BASE_PORT" -port-span 32 2>"$workdir/serve.log" &
srv=$!

client() { "$workdir/serve" -addr "http://127.0.0.1:$HTTP_PORT" "$@"; }

i=0
until client metrics >/dev/null 2>&1; do
    i=$((i + 1))
    if [ $i -ge 100 ] || ! kill -0 "$srv" 2>/dev/null; then
        echo "pa-serve never came up:" >&2
        cat "$workdir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

# ---- Phase 1: kill a rank mid-job; the queue must respawn, not fail.
RN=${RN:-800000}
echo "loadtest: phase 1 — crash/resume (n=$RN, 2 ranks)"
big=$(client submit -n "$RN" -x 3 -seed 7 -job-ranks 2 -job-workers 2 -ckpt-every 60000)
ckdir="$workdir/data/jobs/$big/ck"

polls=0
committed=0
while :; do
    state=$(client show "$big" -field state)
    committed=$(ls "$ckdir" 2>/dev/null | grep -c '\.ckpt$' || true)
    [ "$committed" -ge 2 ] && break
    if [ "$state" = done ]; then
        echo "job finished before the first checkpoint epoch committed;" >&2
        echo "raise RN so the kill lands mid-run" >&2
        exit 1
    fi
    polls=$((polls + 1))
    sleep 0.05
done
# The bracketed [1] keeps pkill from matching this script; the job dir
# pins the pattern to this job's cluster.
pkill -f -- "-rank [1] .*jobs/$big/" \
    || { echo "failed to kill rank 1 of $big" >&2; exit 1; }
echo "loadtest: killed rank 1 of $big after $committed snapshots ($polls polls)"

client wait "$big" -wait-timeout "${TIMEOUT}s"
restarts=$(client show "$big" -field restarts)
[ "$restarts" -ge 1 ] \
    || { echo "job completed with restarts=$restarts, want >= 1 (kill landed after the run?)" >&2; exit 1; }

client download "$big" -o "$workdir/big.bin" >/dev/null
"$workdir/pagen" -n "$RN" -x 3 -seed 7 -ranks 2 -workers 2 \
    -format binary -o "$workdir/ref.bin"
cmp "$workdir/big.bin" "$workdir/ref.bin" \
    || { echo "resumed job's download differs from direct pagen run" >&2; exit 1; }
echo "loadtest: phase 1 ok — respawned job ($restarts restart) byte-identical to direct run"

# ---- Phase 2: concurrent small jobs + one full-pool streamed job.
echo "loadtest: phase 2 — $SMALL_JOBS small jobs + 1 full-pool job on $SLOTS slots"
ids=""
i=0
while [ $i -lt $((SMALL_JOBS / 2)) ]; do
    ids="$ids $(client submit -n 50000 -x 2 -seed $((100 + i)))"
    i=$((i + 1))
done
# The big job lands behind running smalls and must wait for the whole
# pool; the trailing smalls test that backfill cannot starve it past
# the reservation bound.
bigstream=$(client submit -n 400000 -x 3 -seed 11 -job-ranks "$SLOTS" -job-workers 2)
while [ $i -lt "$SMALL_JOBS" ]; do
    ids="$ids $(client submit -n 50000 -x 2 -seed $((100 + i)))"
    i=$((i + 1))
done

for id in $ids; do
    client wait "$id" -wait-timeout "${TIMEOUT}s" >/dev/null
done
client wait "$bigstream" -wait-timeout "${TIMEOUT}s" >/dev/null
client download "$bigstream" -o "$workdir/bigstream.bin" >/dev/null
[ -s "$workdir/bigstream.bin" ] \
    || { echo "streamed download of $bigstream is empty" >&2; exit 1; }
echo "loadtest: phase 2 ok — all $((SMALL_JOBS + 1)) jobs completed"

# ---- Metrics reconciliation and the starvation bound.
client metrics >"$workdir/metrics.txt"
get() { awk -v k="$1" '$1 == k {print $2}' "$workdir/metrics.txt"; }

submitted=$(get submitted); completed=$(get completed)
failed=$(get failed); cancelled=$(get cancelled); rejected=$(get rejected)
queued=$(get queued); running=$(get running); checkpointed=$(get checkpointed)
restarts=$(get restarts); maxwait=$(get queue_wait_nanos.max)

total=$((completed + failed + cancelled + queued + running + checkpointed))
[ "$submitted" -eq "$total" ] \
    || { echo "metrics do not reconcile: submitted=$submitted, state sum=$total" >&2; cat "$workdir/metrics.txt" >&2; exit 1; }
want=$((SMALL_JOBS + 2))
[ "$completed" -eq "$want" ] && [ "$failed" -eq 0 ] && [ "$cancelled" -eq 0 ] && [ "$rejected" -eq 0 ] \
    || { echo "job accounting off: completed=$completed (want $want) failed=$failed cancelled=$cancelled rejected=$rejected" >&2; exit 1; }
[ "$maxwait" -le "$MAX_WAIT_NS" ] \
    || { echo "starvation: max queue wait ${maxwait}ns exceeds bound ${MAX_WAIT_NS}ns" >&2; exit 1; }

# ---- Graceful shutdown: SIGTERM checkpoints the (idle) pool and exits 0.
kill -TERM "$srv"
wait "$srv" || { echo "pa-serve exited non-zero on SIGTERM:" >&2; cat "$workdir/serve.log" >&2; exit 1; }
srv=""

if [ -n "$RESULTS_JSON" ]; then
    cat >"$RESULTS_JSON" <<EOF
{
  "slots": $SLOTS,
  "jobs_completed": $completed,
  "small_jobs": $SMALL_JOBS,
  "crash_respawns": $restarts,
  "max_queue_wait_nanos": $maxwait,
  "max_queue_wait_bound_nanos": $MAX_WAIT_NS,
  "rejected": $rejected,
  "failed": $failed
}
EOF
fi

echo "pa-serve loadtest: $completed jobs ($SMALL_JOBS small + 2 big) on $SLOTS slots; $restarts crash respawn(s); max queue wait $((maxwait / 1000000))ms (bound $((MAX_WAIT_NS / 1000000))ms); metrics reconcile"
