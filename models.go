package pagen

import (
	"pagen/internal/analysis"
	"pagen/internal/approx"
	"pagen/internal/classic"
	"pagen/internal/model"
	"pagen/internal/xrand"
)

// This file exposes the companion generators and structural analyses
// around the core PA algorithm: the Erdős–Rényi and Watts–Strogatz
// models the paper's survey contrasts PA with, the approximate
// distributed PA baseline of Yoo & Henderson the paper improves on, and
// the standard network-structure metrics.

// ErdosRenyi generates a G(n, p) random graph with the Batagelj–Brandes
// geometric-skipping algorithm (O(n + m) expected time).
func ErdosRenyi(n int64, p float64, seed uint64) (*Graph, error) {
	return classic.GNP(n, p, xrand.New(seed))
}

// ErdosRenyiParallel generates G(n, p) with ranks parallel workers over
// disjoint slices of the edge-position space. Unlike preferential
// attachment, G(n, p) has no cross-edge dependencies, so this needs no
// communication — the contrast that motivates the paper's protocol.
func ErdosRenyiParallel(n int64, p float64, ranks int, seed uint64) (*Graph, error) {
	return classic.ParallelGNP(n, p, ranks, seed)
}

// SmallWorld generates a Watts–Strogatz small-world graph: ring lattice
// of degree 2k, each lattice edge rewired with probability beta.
func SmallWorld(n int64, k int, beta float64, seed uint64) (*Graph, error) {
	return classic.SmallWorld(n, k, beta, xrand.New(seed))
}

// ChungLu generates a random graph with the given expected-degree
// sequence (Chung–Lu model, Miller–Hagberg algorithm). Combine with
// PowerLawWeights for a scale-free expected-degree sequence.
func ChungLu(weights []float64, seed uint64) (*Graph, error) {
	return classic.ChungLu(weights, xrand.New(seed))
}

// PowerLawWeights returns n Chung–Lu weights following a power law with
// the given exponent, scaled to the given mean degree.
func PowerLawWeights(n int64, gamma, mean float64) []float64 {
	return classic.PowerLawWeights(n, gamma, mean)
}

// RMATParams re-exports the recursive-matrix model parameters.
type RMATParams = classic.RMATParams

// Graph500 returns the standard Graph500 R-MAT parameterisation.
func Graph500(scale, edgeFactor int) RMATParams {
	return classic.Graph500(scale, edgeFactor)
}

// RMAT generates a recursive-matrix (R-MAT) graph.
func RMAT(p RMATParams, seed uint64) (*Graph, error) {
	return classic.RMAT(p, xrand.New(seed))
}

// ApproxConfig configures GenerateApprox.
type ApproxConfig struct {
	// N, X as in Config.
	N int64
	X int
	// Ranks is the number of parallel workers.
	Ranks int
	// SyncInterval is the block size between degree-table
	// synchronisations — the accuracy control parameter of the
	// approximate algorithm (0 = default).
	SyncInterval int64
	// Seed seeds the per-worker random streams.
	Seed uint64
}

// GenerateApprox runs the Yoo–Henderson-style approximate distributed
// preferential-attachment baseline: parallel within synchronised blocks,
// sampling from degree tables that are stale by up to SyncInterval
// nodes. Its degree distribution only approximates PA, with error
// growing in SyncInterval — the inaccuracy the exact algorithm
// (Generate) eliminates.
func GenerateApprox(cfg ApproxConfig) (*Graph, error) {
	pr := model.Params{N: cfg.N, X: cfg.X, P: DefaultP}
	return approx.Generate(pr, approx.Options{
		SyncInterval: cfg.SyncInterval,
		Ranks:        cfg.Ranks,
		Seed:         cfg.Seed,
	})
}

// GlobalClustering returns the graph's transitivity
// (3 × triangles / connected triples).
func GlobalClustering(g *Graph) float64 {
	return analysis.GlobalClustering(g.ToCSR())
}

// AverageLocalClustering returns the mean Watts–Strogatz local
// clustering coefficient.
func AverageLocalClustering(g *Graph) float64 {
	return analysis.AverageLocalClustering(g.ToCSR())
}

// DegreeAssortativity returns Newman's degree-assortativity coefficient.
func DegreeAssortativity(g *Graph) float64 {
	return analysis.DegreeAssortativity(g)
}

// AveragePathLength estimates the mean shortest-path length by BFS from
// a random sample of sources.
func AveragePathLength(g *Graph, sources int, seed uint64) float64 {
	rng := xrand.New(seed)
	return analysis.AverageShortestPathSample(g.ToCSR(), sources, rng.Int64n)
}

// CoreNumbers returns the k-core number of every node (Batagelj–
// Zaveršnik peeling).
func CoreNumbers(g *Graph) []int64 {
	return analysis.KCores(g.ToCSR())
}

// Degeneracy returns the graph's largest core number; for a PA graph
// with parameter x it equals x.
func Degeneracy(g *Graph) int64 {
	return analysis.MaxCore(g.ToCSR())
}
