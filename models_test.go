package pagen

import (
	"math"
	"testing"
)

func TestErdosRenyiFacade(t *testing.T) {
	g, err := ErdosRenyi(2000, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expected := float64(2000*1999/2) * 0.005
	if math.Abs(float64(g.M())-expected) > 5*math.Sqrt(expected) {
		t.Fatalf("m = %d, expected ~%v", g.M(), expected)
	}
}

func TestErdosRenyiParallelFacade(t *testing.T) {
	g, err := ErdosRenyiParallel(2000, 0.005, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallWorldFacade(t *testing.T) {
	g, err := SmallWorld(1000, 2, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2000 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestGenerateApproxFacade(t *testing.T) {
	g, err := GenerateApprox(ApproxConfig{N: 5000, X: 3, Ranks: 4, SyncInterval: 256, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 3+(5000-3)*3 {
		t.Fatalf("m = %d", g.M())
	}
}

func TestChungLuFacade(t *testing.T) {
	g, err := ChungLu(PowerLawWeights(5000, 2.5, 6), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	mean := 2 * float64(g.M()) / 5000
	if mean < 4 || mean > 8 {
		t.Fatalf("mean degree %v", mean)
	}
}

func TestRMATFacade(t *testing.T) {
	g, err := RMAT(Graph500(10, 4), 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1024 || g.M() != 4096 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
}

// The textbook three-model comparison the intro draws: PA is
// heavy-tailed and short-pathed; WS clusters; ER does neither.
func TestModelZooContrasts(t *testing.T) {
	const n = 5000
	pa, err := Generate(Config{N: n, X: 3, Ranks: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := SmallWorld(n, 3, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ErdosRenyi(n, 6.0/float64(n-1), 9)
	if err != nil {
		t.Fatal(err)
	}

	// Heavy tail: PA max degree far exceeds ER's and WS's.
	maxDeg := func(g *Graph) int64 {
		m, _ := g.DegreeHistogram().Max()
		return m
	}
	if maxDeg(pa.Graph) < 3*maxDeg(er) {
		t.Errorf("PA max degree %d not >> ER %d", maxDeg(pa.Graph), maxDeg(er))
	}
	if maxDeg(pa.Graph) < 3*maxDeg(ws) {
		t.Errorf("PA max degree %d not >> WS %d", maxDeg(pa.Graph), maxDeg(ws))
	}
	// Clustering: WS >> ER.
	if cWS, cER := AverageLocalClustering(ws), AverageLocalClustering(er); cWS < 5*cER {
		t.Errorf("WS clustering %v not >> ER %v", cWS, cER)
	}
	// Short paths in PA.
	if apl := AveragePathLength(pa.Graph, 4, 11); apl > 2*math.Log(n) {
		t.Errorf("PA average path length %v too long", apl)
	}
	// PA weakly disassortative.
	if r := DegreeAssortativity(pa.Graph); r > 0.05 {
		t.Errorf("PA assortativity %v unexpectedly positive", r)
	}
}

// Accuracy comparison between the exact parallel algorithm and the
// approximate baseline: with a loose sync interval, the approximation's
// exponent drifts from the exact algorithm's; the exact algorithm and
// the sequential reference agree.
func TestExactBeatsApproxAccuracy(t *testing.T) {
	const n = 20000
	exact, err := Generate(Config{N: n, X: 4, Ranks: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	repExact, err := Analyze(exact.Graph, 8)
	if err != nil {
		t.Fatal(err)
	}
	seqG, _, err := GenerateSeq(Config{N: n, X: 4, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	repSeq, err := Analyze(seqG, 8)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := GenerateApprox(ApproxConfig{N: n, X: 4, Ranks: 8, SyncInterval: n, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	repLoose, err := Analyze(loose, 8)
	if err != nil {
		t.Fatal(err)
	}
	exactDev := math.Abs(repExact.Gamma - repSeq.Gamma)
	looseDev := math.Abs(repLoose.Gamma - repSeq.Gamma)
	if exactDev > 0.15 {
		t.Errorf("exact parallel gamma %v deviates %v from sequential %v",
			repExact.Gamma, exactDev, repSeq.Gamma)
	}
	if looseDev <= exactDev {
		t.Errorf("approximation (dev %v) not worse than exact (dev %v)", looseDev, exactDev)
	}
}

func TestDegeneracyOfPAGraph(t *testing.T) {
	res, err := Generate(Config{N: 4000, X: 5, Ranks: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if d := Degeneracy(res.Graph); d != 5 {
		t.Fatalf("degeneracy = %d, want 5", d)
	}
	cores := CoreNumbers(res.Graph)
	if len(cores) != 4000 {
		t.Fatalf("core numbers for %d nodes", len(cores))
	}
}
