// Command pa-dist regenerates the paper's Figure 4: the log-log degree
// distribution of a parallel-generated network, with the fitted power-law
// exponent (the paper reports gamma ≈ 2.7 at n = 1e9, x = 4).
//
// Usage:
//
//	pa-dist -n 1000000 -x 4 -ranks 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pagen"
	"pagen/internal/analysis"
	"pagen/internal/bench"
	"pagen/internal/model"
	"pagen/internal/partition"
)

func main() {
	var (
		n        = flag.Int64("n", 1000000, "number of nodes (paper: 1e9)")
		x        = flag.Int("x", 4, "edges per new node (paper: 4)")
		p        = flag.Float64("p", 0.5, "direct-attachment probability")
		ranks    = flag.Int("ranks", 8, "parallel ranks")
		seed     = flag.Uint64("seed", 1, "random seed")
		streamed = flag.Bool("streamed", false, "compute degrees on the fly (8n bytes instead of ~16m; skips connectivity)")
	)
	flag.Parse()

	pr := model.Params{N: *n, X: *x, P: *p}
	var rep analysis.DegreeReport
	var elapsed time.Duration
	if *streamed {
		deg, res, err := pagen.DegreesStreamed(pagen.Config{
			N: *n, X: *x, P: *p, Ranks: *ranks, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pa-dist:", err)
			os.Exit(1)
		}
		rep, err = analysis.AnalyzeDegreeSequence(deg, int64(2**x))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pa-dist:", err)
			os.Exit(1)
		}
		elapsed = res.Elapsed
	} else {
		res, err := bench.Fig4(pr, partition.KindRRP, *ranks, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pa-dist:", err)
			os.Exit(1)
		}
		rep = res.Report
		elapsed = res.Elapsed
	}
	fmt.Printf("# Figure 4: degree distribution (n=%d, x=%d, p=%g, ranks=%d)\n", *n, *x, *p, *ranks)
	fmt.Printf("# edges=%d generated in %v\n", rep.M, elapsed)
	fmt.Printf("# gamma (MLE, d>=%d) = %.3f  KS = %.4f  tail n = %d\n", rep.GammaDMin, rep.Gamma, rep.GammaKS, rep.TailN)
	fmt.Printf("# log-log PMF slope = %.3f (R2 = %.4f)\n", rep.LogLogSlope, rep.LogLogR2)
	fmt.Printf("# degree range [%d, %d], mean %.2f, components %d\n", rep.MinDeg, rep.MaxDeg, rep.MeanDeg, rep.Components)
	fmt.Println("# degree\tP(degree)   (log-binned)")
	if err := rep.WriteDistributionTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pa-dist:", err)
		os.Exit(1)
	}
}
