// Command pa-chain regenerates the dependency-chain experiment behind
// Section 3.4: empirical chain-length statistics against the Theorem 3.3
// bounds (E[L_t] <= ln n; L_max = O(log n), constant 5 in the proof).
//
// Usage:
//
//	pa-chain -n 1000000 -x 1
package main

import (
	"flag"
	"fmt"
	"os"

	"pagen/internal/analysis"
	"pagen/internal/model"
	"pagen/internal/seq"
)

func main() {
	var (
		n    = flag.Int64("n", 1000000, "number of nodes")
		x    = flag.Int("x", 1, "edges per node")
		p    = flag.Float64("p", 0.5, "direct-attachment probability")
		seed = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	pr := model.Params{N: *n, X: *x, P: *p}
	_, tr, err := seq.CopyModel(pr, *seed, seq.CopyModelOptions{RecordTrace: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pa-chain:", err)
		os.Exit(1)
	}
	st := analysis.SummarizeChains(analysis.DependencyChainLengths(tr))
	res, err := analysis.SummaryAgainstTheorem33(pr.N, st)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pa-chain:", err)
		os.Exit(1)
	}
	fmt.Printf("# Section 3.4 / Theorem 3.3: dependency chains (n=%d, x=%d, p=%g)\n", *n, *x, *p)
	fmt.Printf("slots          %d\n", st.Slots)
	fmt.Printf("mean chain     %.4f (bound ln n = %.2f; 1/p heuristic = %.2f)\n", st.Mean, res.LogN, 1 / *p)
	fmt.Printf("max chain      %d (bound 5 ln n = %.2f)\n", st.Max, res.FiveLogN)
	fmt.Printf("within bounds  %v\n", res.WithinBounds)
	fmt.Println("\nlength\tcount")
	if err := st.Hist.WriteTSV(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pa-chain:", err)
		os.Exit(1)
	}
}
