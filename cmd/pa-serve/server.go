package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"

	"pagen/internal/esink"
	"pagen/internal/graph"
	"pagen/internal/jobqueue"
)

// server routes the HTTP/JSON API of docs/API.md onto a jobqueue.
// Route literals below are audited against docs/API.md by
// scripts/check_flags.sh, so every served endpoint stays documented.
type server struct {
	q *jobqueue.Queue
}

// newServer builds the API handler for q.
func newServer(q *jobqueue.Queue) http.Handler {
	s := &server{q: q}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("POST /jobs", s.submit)
	mux.HandleFunc("GET /jobs", s.list)
	mux.HandleFunc("GET /jobs/{id}", s.get)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.cancel)
	mux.HandleFunc("POST /jobs/{id}/preempt", s.preempt)
	mux.HandleFunc("GET /jobs/{id}/download", s.download)
	mux.HandleFunc("GET /jobs/{id}/shards/{rank}", s.shard)
	return mux
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps a queue error onto the API's error contract
// (docs/API.md "Error codes"): a JSON {"error": ...} body with 400 for
// invalid specs, 429 queue full, 404 unknown job, 409 for operations
// the job's state forbids, 503 when shutting down.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobqueue.ErrBadSpec):
		status = http.StatusBadRequest
	case errors.Is(err, jobqueue.ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, jobqueue.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, jobqueue.ErrFinished), errors.Is(err, jobqueue.ErrNotRunning):
		status = http.StatusConflict
	case errors.Is(err, jobqueue.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	m := s.q.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"slots_total": m.SlotsTotal,
		"slots_free":  m.SlotsFree,
	})
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.q.Metrics())
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobqueue.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("%w: bad JSON body: %v", jobqueue.ErrBadSpec, err))
		return
	}
	job, err := s.q.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.q.List()})
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	job, err := s.q.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.q.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *server) preempt(w http.ResponseWriter, r *http.Request) {
	job, err := s.q.Preempt(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// finishedJob fetches a job and enforces the download precondition:
// shards are only complete — and only byte-stable — once the job is
// done.
func (s *server) finishedJob(w http.ResponseWriter, id string) (jobqueue.Job, bool) {
	job, err := s.q.Get(id)
	if err != nil {
		writeErr(w, err)
		return jobqueue.Job{}, false
	}
	if job.State != jobqueue.StateDone {
		writeErr(w, fmt.Errorf("%w: job %s is %s, downloads need state done",
			jobqueue.ErrNotRunning, job.ID, job.State))
		return jobqueue.Job{}, false
	}
	return job, true
}

// download streams the job's merged edge list in the pagen binary
// graph format: the esink DirReader merges the per-rank shards in
// canonical order and graph.WriteBinaryStream frames them, so the body
// is byte-identical to `pagen -format binary` with the same
// parameters.
func (s *server) download(w http.ResponseWriter, r *http.Request) {
	job, ok := s.finishedJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	dr, err := esink.OpenDir(filepath.Join(job.Dir, "shards"), job.Spec.Ranks)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer dr.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s.pag", job.ID))
	// Past this point errors can only be logged: the status line is out.
	graph.WriteBinaryStream(w, dr.Meta().N, dr.Edges(), dr.Iter(0))
}

// shard serves one raw per-rank shard file (docs/SHARD_FORMAT.md) for
// clients that want the partitioned output without merging.
func (s *server) shard(w http.ResponseWriter, r *http.Request) {
	job, ok := s.finishedJob(w, r.PathValue("id"))
	if !ok {
		return
	}
	rank, err := strconv.Atoi(r.PathValue("rank"))
	if err != nil || rank < 0 || rank >= job.Spec.Ranks {
		writeErr(w, fmt.Errorf("%w: rank %q outside [0,%d)",
			jobqueue.ErrNotFound, r.PathValue("rank"), job.Spec.Ranks))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, r, esink.ShardPath(filepath.Join(job.Dir, "shards"), rank, job.Spec.Ranks))
}
