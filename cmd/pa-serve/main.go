// Command pa-serve is the generation-as-a-service control plane: a
// long-lived daemon exposing the preferential-attachment generator
// through an HTTP/JSON job API (docs/API.md). Clients submit
// parameterizations (n, x, p, seed, scheme, ranks, workers, resolve,
// hub-prefix), poll status, list, cancel or preempt jobs, and download
// a finished job's edges — either the merged binary graph streamed
// from its shards or the raw per-rank shard files.
//
// Jobs are scheduled by internal/jobqueue onto an elastic pool of rank
// slots: FIFO with backfill, bounded by an aging reservation so a big
// job cannot starve behind a stream of small ones (DESIGN.md §14).
// Every job owns a directory under -data-dir with its checkpoint
// epochs and streamed shards, so jobs survive rank crashes (the queue
// relaunches the job's cluster with -resume, like the pa-tcp
// supervisor) and operator preemption (the job resumes later from its
// newest committed epoch with byte-identical final output).
//
// Flags:
//
//	-listen        HTTP listen address (default 127.0.0.1:8080)
//	-data-dir      root for per-job directories (default pa-serve-data)
//	-slots         rank-process capacity of the pool (default 8)
//	-queue-cap     max jobs waiting for admission; Submit past it gets
//	               429 (default 64)
//	-max-restarts  crash respawns per job before it fails (default 3)
//	-reserve-after queue wait after which a starved job reserves the
//	               pool (default 30s)
//	-runner        job executor: "process" spawns pa-tcp rank processes,
//	               "inprocess" runs ranks as goroutines over the
//	               shared-memory transport (default process)
//	-pa-tcp        pa-tcp binary for -runner=process (default: found in
//	               PATH)
//	-port-base     first TCP port for rank meshes (default 42000)
//	-port-span     size of the rank-mesh port range; must be >= -slots
//	               (default 128)
//
// Operations guidance (capacity planning, deployment, troubleshooting)
// is in docs/OPERATIONS.md §9.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"pagen/internal/jobqueue"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		dataDir      = flag.String("data-dir", "pa-serve-data", "root directory for per-job state")
		slots        = flag.Int("slots", 8, "rank-process capacity of the pool")
		queueCap     = flag.Int("queue-cap", 64, "max jobs waiting for admission")
		maxRestarts  = flag.Int("max-restarts", 3, "crash respawns per job before it fails")
		reserveAfter = flag.Duration("reserve-after", 30*time.Second, "queue wait after which a starved job reserves the pool")
		runnerKind   = flag.String("runner", "process", "job executor: process | inprocess")
		paTCP        = flag.String("pa-tcp", "pa-tcp", "pa-tcp binary (for -runner=process)")
		portBase     = flag.Int("port-base", 42000, "first TCP port for rank meshes")
		portSpan     = flag.Int("port-span", 128, "size of the rank-mesh port range")
	)
	flag.Parse()

	var runner jobqueue.Runner
	switch *runnerKind {
	case "process":
		bin, err := exec.LookPath(*paTCP)
		if err != nil {
			log.Fatalf("pa-serve: -runner=process needs the pa-tcp binary: %v", err)
		}
		if *portSpan < *slots {
			log.Fatalf("pa-serve: -port-span %d < -slots %d: concurrent ranks would collide", *portSpan, *slots)
		}
		runner = &jobqueue.ProcessRunner{
			Binary: bin,
			Ports:  jobqueue.NewPortAlloc("127.0.0.1", *portBase, *portSpan),
		}
	case "inprocess":
		runner = jobqueue.InProcessRunner{}
	default:
		log.Fatalf("pa-serve: unknown -runner %q (want process or inprocess)", *runnerKind)
	}

	q, err := jobqueue.New(jobqueue.Config{
		Root:         *dataDir,
		Slots:        *slots,
		QueueCap:     *queueCap,
		MaxRestarts:  *maxRestarts,
		ReserveAfter: *reserveAfter,
		Runner:       runner,
	})
	if err != nil {
		log.Fatalf("pa-serve: %v", err)
	}

	srv := &http.Server{Addr: *listen, Handler: newServer(q)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("pa-serve: listening on %s (%d slots, %s runner, data in %s)",
		*listen, *slots, *runnerKind, *dataDir)

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight requests
		// finish, then checkpoint the running jobs off the pool. Their
		// directories keep everything a restarted daemon needs.
		log.Print("pa-serve: shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("pa-serve: http shutdown: %v", err)
		}
		q.Close()
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			q.Close()
			log.Fatalf("pa-serve: %v", err)
		}
	}
	fmt.Println("pa-serve: stopped")
}
