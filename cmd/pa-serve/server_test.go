package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pagen/internal/core"
	"pagen/internal/esink"
	"pagen/internal/graph"
	"pagen/internal/jobqueue"
	"pagen/internal/model"
	"pagen/internal/partition"
)

// newTestServer wires a queue with the given runner into an httptest
// server.
func newTestServer(t *testing.T, runner jobqueue.Runner, mutate func(*jobqueue.Config)) *httptest.Server {
	t.Helper()
	cfg := jobqueue.Config{
		Root:         t.TempDir(),
		Slots:        4,
		QueueCap:     8,
		MaxRestarts:  2,
		ReserveAfter: time.Minute,
		Runner:       runner,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	q, err := jobqueue.New(cfg)
	if err != nil {
		t.Fatalf("jobqueue.New: %v", err)
	}
	t.Cleanup(q.Close)
	ts := httptest.NewServer(newServer(q))
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("%s %s: decode: %v", method, url, err)
	}
	return resp.StatusCode, v
}

func waitDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, j := doJSON(t, "GET", base+"/jobs/"+id, "")
		if code != http.StatusOK {
			t.Fatalf("GET job: %d %v", code, j)
		}
		switch j["state"] {
		case "done":
			return j
		case "failed", "cancelled":
			t.Fatalf("job %s ended %s: %v", id, j["state"], j["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j["state"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeEndToEnd drives the full lifecycle over HTTP with a real
// in-process generation: submit, poll to done, check /metrics and
// /healthz, and verify the downloaded binary graph is byte-identical
// to the same shards framed directly — and that the raw shard
// endpoint serves the exact on-disk shard bytes.
func TestServeEndToEnd(t *testing.T) {
	ts := newTestServer(t, jobqueue.InProcessRunner{}, nil)

	code, j := doJSON(t, "POST", ts.URL+"/jobs",
		`{"n": 3000, "x": 2, "seed": 7, "ranks": 2, "workers": 2, "checkpoint_every": 1000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, j)
	}
	id := j["id"].(string)
	if j["state"] != "queued" && j["state"] != "running" {
		t.Errorf("fresh job state = %v", j["state"])
	}
	done := waitDone(t, ts.URL, id)
	dir := done["dir"].(string)

	// Reference framing of the job's own shards.
	dr, err := esink.OpenDir(dir+"/shards", 2)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	defer dr.Close()
	var want bytes.Buffer
	if err := graph.WriteBinaryStream(&want, dr.Meta().N, dr.Edges(), dr.Iter(0)); err != nil {
		t.Fatalf("reference framing: %v", err)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/download")
	if err != nil {
		t.Fatalf("download: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("download: %d %v", resp.StatusCode, err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("download differs from direct framing: %d vs %d bytes", len(got), want.Len())
	}

	// And the same bytes again as a cross-check against a direct
	// engine run of the same spec — the service changed nothing.
	refDir := t.TempDir()
	part, _ := partition.New(partition.KindRRP, 3000, 2)
	if _, err := core.Run(core.Options{
		Params: model.Params{N: 3000, X: 2, P: model.DefaultP}, Part: part,
		Seed: 7, Workers: 2, StreamDir: refDir,
	}, false); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	refRd, err := esink.OpenDir(refDir, 2)
	if err != nil {
		t.Fatalf("OpenDir(ref): %v", err)
	}
	defer refRd.Close()
	var ref bytes.Buffer
	if err := graph.WriteBinaryStream(&ref, refRd.Meta().N, refRd.Edges(), refRd.Iter(0)); err != nil {
		t.Fatalf("ref framing: %v", err)
	}
	if !bytes.Equal(got, ref.Bytes()) {
		t.Fatalf("download differs from direct engine run: %d vs %d bytes", len(got), ref.Len())
	}

	// Raw shard endpoint returns a parseable shard.
	resp, err = http.Get(ts.URL + "/jobs/" + id + "/shards/1")
	if err != nil {
		t.Fatalf("shard: %v", err)
	}
	shardBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(shardBytes) == 0 {
		t.Fatalf("shard: %d, %d bytes", resp.StatusCode, len(shardBytes))
	}

	// /metrics reconciles; /healthz reports the idle pool.
	code, m := doJSON(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK || m["completed"].(float64) != 1 || m["submitted"].(float64) != 1 {
		t.Errorf("metrics: %d %v", code, m)
	}
	code, h := doJSON(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || h["status"] != "ok" || h["slots_free"].(float64) != 4 {
		t.Errorf("healthz: %d %v", code, h)
	}

	// Listing includes the job.
	code, l := doJSON(t, "GET", ts.URL+"/jobs", "")
	if code != http.StatusOK || len(l["jobs"].([]any)) != 1 {
		t.Errorf("list: %d %v", code, l)
	}
}

// stuckRunner parks until its context is cancelled.
type stuckRunner struct{}

func (stuckRunner) Run(ctx context.Context, _ jobqueue.JobInfo, _ bool) error {
	<-ctx.Done()
	return ctx.Err()
}

// TestServeErrorContract pins the HTTP status for every documented
// error class (docs/API.md "Error codes").
func TestServeErrorContract(t *testing.T) {
	ts := newTestServer(t, stuckRunner{}, func(c *jobqueue.Config) {
		c.Slots = 1
		c.QueueCap = 1
	})

	// 400: invalid spec and malformed JSON.
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"n": 1, "x": 5}`); code != http.StatusBadRequest {
		t.Errorf("bad spec: %d, want 400", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"n": `); code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/jobs", `{"n": 100, "x": 2, "bogus": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", code)
	}

	// Fill the pool (job runs forever) and the queue.
	code, j1 := doJSON(t, "POST", ts.URL+"/jobs", `{"n": 100, "x": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: %d", code)
	}
	running := j1["id"].(string)
	// Wait until it occupies the slot so the next submit queues.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, j := doJSON(t, "GET", ts.URL+"/jobs/"+running, "")
		if j["state"] == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ = doJSON(t, "POST", ts.URL+"/jobs", `{"n": 100, "x": 2}`); code != http.StatusAccepted {
		t.Fatalf("submit 2: %d", code)
	}

	// 429: queue full.
	if code, _ = doJSON(t, "POST", ts.URL+"/jobs", `{"n": 100, "x": 2}`); code != http.StatusTooManyRequests {
		t.Errorf("queue full: %d, want 429", code)
	}

	// 404: unknown job, and shard rank out of range.
	if code, _ = doJSON(t, "GET", ts.URL+"/jobs/j999999", ""); code != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", code)
	}
	if code, _ = doJSON(t, "DELETE", ts.URL+"/jobs/j999999", ""); code != http.StatusNotFound {
		t.Errorf("cancel unknown: %d, want 404", code)
	}

	// 409: download before done, preempt a non-running job, cancel a
	// finished job.
	if code, _ = doJSON(t, "GET", ts.URL+"/jobs/"+running+"/download", ""); code != http.StatusConflict {
		t.Errorf("early download: %d, want 409", code)
	}
	if code, _ = doJSON(t, "POST", ts.URL+"/jobs/"+running+"/preempt", ""); code != http.StatusOK {
		t.Errorf("preempt running: %d, want 200", code)
	}
	// The preempted job left the pool; it re-queues. Cancel it for good.
	if code, _ = doJSON(t, "POST", ts.URL+"/jobs/"+running+"/cancel", ""); code != http.StatusOK {
		t.Errorf("cancel: %d, want 200", code)
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		_, j := doJSON(t, "GET", ts.URL+"/jobs/"+running, "")
		if j["state"] == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancel never landed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ = doJSON(t, "POST", ts.URL+"/jobs/"+running+"/cancel", ""); code != http.StatusConflict {
		t.Errorf("cancel finished: %d, want 409", code)
	}
	if code, _ = doJSON(t, "POST", ts.URL+"/jobs/"+running+"/preempt", ""); code != http.StatusConflict {
		t.Errorf("preempt finished: %d, want 409", code)
	}

	// Metrics reflect the rejection.
	_, m := doJSON(t, "GET", ts.URL+"/metrics", "")
	if m["rejected"].(float64) != 1 {
		t.Errorf("rejected = %v, want 1", m["rejected"])
	}
}

// crashOnceRunner fails its first attempt per job, then parks a moment
// and succeeds — enough for the API to surface restart accounting.
type crashOnceRunner struct {
	seen map[string]bool
}

func (r *crashOnceRunner) Run(ctx context.Context, job jobqueue.JobInfo, resume bool) error {
	if !r.seen[job.ID] {
		r.seen[job.ID] = true
		return errors.New("rank 0: simulated crash")
	}
	if !resume {
		return fmt.Errorf("respawn of %s did not resume", job.ID)
	}
	return nil
}

func TestServeCrashRespawnVisible(t *testing.T) {
	ts := newTestServer(t, &crashOnceRunner{seen: map[string]bool{}}, func(c *jobqueue.Config) {
		c.Slots = 1 // one job at a time: the runner's map is unsynchronized
	})
	code, j := doJSON(t, "POST", ts.URL+"/jobs", `{"n": 100, "x": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitDone(t, ts.URL, j["id"].(string))
	if done["restarts"].(float64) != 1 || done["attempts"].(float64) != 2 {
		t.Errorf("restarts/attempts = %v/%v, want 1/2", done["restarts"], done["attempts"])
	}
	_, m := doJSON(t, "GET", ts.URL+"/metrics", "")
	if m["restarts"].(float64) != 1 || m["failed"].(float64) != 0 {
		t.Errorf("metrics: %v", m)
	}
}
