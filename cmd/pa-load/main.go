// Command pa-load regenerates the paper's Figure 7: per-processor node,
// outgoing-message, incoming-message and total-load distributions for the
// UCP, LCP and RRP partitioning schemes (paper: n=1e8, x=10, P=160).
//
// Usage:
//
//	pa-load -n 100000 -x 10 -ranks 160
package main

import (
	"flag"
	"fmt"
	"os"

	"pagen/internal/bench"
	"pagen/internal/model"
	"pagen/internal/partition"
)

func main() {
	var (
		n     = flag.Int64("n", 100000, "number of nodes (paper: 1e8)")
		x     = flag.Int("x", 10, "edges per node (paper: 10)")
		p     = flag.Float64("p", 0.5, "direct-attachment probability")
		ranks = flag.Int("ranks", 160, "number of processors (paper: 160)")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	pr := model.Params{N: *n, X: *x, P: *p}
	kinds := []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP}
	rows, err := bench.Fig7(pr, kinds, *ranks, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pa-load:", err)
		os.Exit(1)
	}
	fmt.Printf("# Figure 7: load distributions (n=%d, x=%d, P=%d)\n", *n, *x, *ranks)
	if err := bench.WriteFig7(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "pa-load:", err)
		os.Exit(1)
	}
}
