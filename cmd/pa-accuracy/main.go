// Command pa-accuracy compares the exact parallel algorithm (this
// paper's contribution) against the Yoo–Henderson-style approximate
// baseline (the paper's reference [28]) across synchronisation
// intervals: the accuracy-versus-parallelism tradeoff the exact
// algorithm eliminates.
//
// Usage:
//
//	pa-accuracy -n 100000 -x 4 -ranks 8
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"pagen/internal/approx"
	"pagen/internal/core"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/seq"
	"pagen/internal/stats"
	"pagen/internal/xrand"
)

func main() {
	var (
		n     = flag.Int64("n", 100000, "number of nodes")
		x     = flag.Int("x", 4, "edges per node")
		ranks = flag.Int("ranks", 8, "parallel workers/ranks")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	pr := model.Params{N: *n, X: *x, P: 0.5}
	dmin := int64(2 * *x)

	// Reference: sequential Batagelj–Brandes (exact BA).
	ref, err := seq.BatageljBrandes(pr, xrand.New(*seed))
	fatalIf(err)
	refGamma := gammaOf(ref, dmin)

	fmt.Printf("# exact vs approximate distributed PA (n=%d, x=%d, ranks=%d)\n", *n, *x, *ranks)
	fmt.Printf("# reference sequential BA gamma = %.3f\n", refGamma)
	fmt.Println("algorithm\tsync_interval\tgamma\tgamma_error\tmax_degree")

	// Exact parallel algorithm (no control parameter to tune).
	part, err := partition.New(partition.KindRRP, pr.N, *ranks)
	fatalIf(err)
	res, err := core.Run(core.Options{Params: pr, Part: part, Seed: *seed + 1}, false)
	fatalIf(err)
	printRow("exact (this paper)", "-", res.Graph, refGamma, dmin)

	// Approximate baseline across sync intervals.
	for _, interval := range []int64{16, 256, 4096, *n} {
		g, err := approx.Generate(pr, approx.Options{
			Ranks: *ranks, SyncInterval: interval, Seed: *seed + 2,
		})
		fatalIf(err)
		printRow("approx [28]", fmt.Sprint(interval), g, refGamma, dmin)
	}
	fmt.Println("# exact needs no tuning; approx error grows with the interval")
}

func gammaOf(g *graph.Graph, dmin int64) float64 {
	fit, err := stats.PowerLawMLE(g.Degrees(), dmin)
	fatalIf(err)
	return fit.Gamma
}

func printRow(name, interval string, g *graph.Graph, refGamma float64, dmin int64) {
	gamma := gammaOf(g, dmin)
	h := g.DegreeHistogram()
	maxD, _ := h.Max()
	fmt.Printf("%s\t%s\t%.3f\t%.3f\t%d\n", name, interval, gamma, math.Abs(gamma-refGamma), maxD)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pa-accuracy:", err)
		os.Exit(1)
	}
}
