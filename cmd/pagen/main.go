// Command pagen generates a preferential-attachment network with the
// parallel algorithm and writes it as an edge list.
//
// Usage:
//
//	pagen -n 1000000 -x 4 -ranks 8 -scheme RRP -o graph.txt
//	pagen -n 1000000 -x 4 -format binary -o graph.bin -stats
//	pagen -n 1000000 -x 4 -ranks 8 -metrics metrics.json -o graph.txt
//	pagen -n 1000000 -x 4 -checkpoint-dir ck -checkpoint-every 5000000 -o graph.txt
//	pagen -n 1000000 -x 4 -checkpoint-dir ck -resume -o graph.txt
//	pagen -n 100000000 -x 4 -stream-dir shards -checkpoint-dir ck -checkpoint-every 20000000
//
// -metrics FILE exports the run's observability record (per-rank
// counters, wait-chain histograms, and the per-node received-message
// load with the Lemma 3.4 prediction alongside) as JSON; "-" writes it
// to stderr.
//
// -checkpoint-dir DIR with -checkpoint-every N snapshots every rank's
// engine state roughly every N protocol events; a later invocation with
// the same parameters plus -resume continues from the newest complete
// epoch and produces the identical graph. See docs/OPERATIONS.md.
//
// -stream-dir DIR spills each rank's edges into a compressed,
// CRC-protected shard file (docs/SHARD_FORMAT.md) with bounded resident
// memory, so n is limited by disk rather than RAM. It composes with
// checkpointing: a killed run resumed with -resume truncates each shard
// to its snapshot's durable mark and regenerates exactly the missing
// suffix. Read the shards with pa-analyze -stream-dir.
//
// -transport selects how the in-process ranks exchange message batches:
// shm (the default; batches are handed between rank goroutines by
// reference, no serialization) or local (every batch round-trips
// through the wire codec — the serialization ablation). The output is
// byte-identical for both; tcp is rejected here (use pa-tcp).
package main

import (
	"flag"
	"fmt"
	"os"

	"pagen"
	"pagen/internal/graph"
)

func main() {
	var (
		n           = flag.Int64("n", 100000, "number of nodes")
		x           = flag.Int("x", 4, "edges per new node")
		p           = flag.Float64("p", 0.5, "direct-attachment probability (0.5 = exact BA)")
		ranks       = flag.Int("ranks", 4, "number of parallel ranks")
		workers     = flag.Int("workers", 0, "generation goroutines per rank (0 = GOMAXPROCS)")
		transport   = flag.String("transport", "shm", "in-process transport between ranks: shm (by-reference) or local (serialization ablation); output is identical for both")
		scheme      = flag.String("scheme", "RRP", "partitioning scheme: UCP, LCP, RRP, ExactCP")
		seed        = flag.Uint64("seed", 1, "random seed")
		hub         = flag.Int64("hub-prefix", 0, "hub-prefix cache size H (0 = auto, <0 = off); output is identical for every setting")
		resolve     = flag.String("resolve", "wire", "non-local dependency resolution: wire or recompute; output is identical in both modes")
		rcDepth     = flag.Int("recompute-depth", 0, "recompute replay chain depth cap before wire fallback (0 = ~2*log2(n))")
		out         = flag.String("o", "", "output file (default stdout)")
		format      = flag.String("format", "text", "output format: text or binary")
		stats       = flag.Bool("stats", false, "print per-rank statistics to stderr")
		seq         = flag.Bool("seq", false, "use the sequential copy model instead")
		shardDir    = flag.String("shard-dir", "", "stream per-rank edge shards to this directory instead of a single output")
		streamDir   = flag.String("stream-dir", "", "spill compressed per-rank edge shards to this directory with bounded memory (docs/SHARD_FORMAT.md); composes with -checkpoint-dir")
		streamBlock = flag.Int("stream-block-edges", 0, "edge records buffered per stream block before a sorted flush (0 = 65536)")
		metrics     = flag.String("metrics", "", "write run metrics JSON to this file (\"-\" = stderr)")
		ckptDir     = flag.String("checkpoint-dir", "", "write per-rank snapshots to this directory (see docs/OPERATIONS.md)")
		ckptN       = flag.Int64("checkpoint-every", 0, "protocol events between checkpoint epochs (requires -checkpoint-dir)")
		ckptKeep    = flag.Int("checkpoint-keep", 0, "full epochs to retain per rank (0 = default)")
		ckptFull    = flag.Int("checkpoint-full-every", 0, "full-snapshot cadence: every Nth epoch is full, the rest are incremental deltas (0 or 1 = all full)")
		resume      = flag.Bool("resume", false, "resume from the latest restorable epoch in -checkpoint-dir")
	)
	flag.Parse()

	if *ranks < 1 {
		fatal(fmt.Errorf("-ranks %d: need at least 1 rank", *ranks))
	}
	switch *transport {
	case "shm", "local":
	case "tcp":
		fatal(fmt.Errorf("-transport tcp: pagen runs its ranks in one process; use pa-tcp for the TCP mesh"))
	default:
		fatal(fmt.Errorf("-transport %q: want shm or local", *transport))
	}
	ckptOn := *ckptDir != "" || *ckptN != 0 || *resume
	cfg := pagen.Config{N: *n, X: *x, P: *p, Ranks: *ranks, Workers: *workers,
		Transport: *transport,
		Scheme:    *scheme, Seed: *seed, HubPrefix: *hub,
		Resolve: *resolve, RecomputeDepth: *rcDepth,
		// Per-node load counters are the one metrics input snapshots do
		// not capture; under checkpointing -metrics still exports
		// everything else (pause/write histograms included), just
		// without the load curve.
		CollectNodeLoad: *metrics != "" && !ckptOn,
		CheckpointDir:   *ckptDir, CheckpointEvery: *ckptN,
		CheckpointKeep: *ckptKeep, CheckpointFullEvery: *ckptFull, Resume: *resume,
		StreamDir: *streamDir, StreamBlockEdges: *streamBlock}

	if *seq && *metrics != "" {
		fatal(fmt.Errorf("-metrics needs the parallel engine (drop -seq)"))
	}
	if *seq && *resolve != "wire" {
		fatal(fmt.Errorf("-resolve needs the parallel engine (drop -seq)"))
	}
	if ckptOn {
		switch {
		case *seq:
			fatal(fmt.Errorf("checkpointing needs the parallel engine (drop -seq)"))
		case *shardDir != "":
			fatal(fmt.Errorf("checkpointing is incompatible with -shard-dir (snapshots cannot rewind streamed edges; use -stream-dir, whose shards resume)"))
		}
	}

	if *streamDir != "" {
		switch {
		case *seq:
			fatal(fmt.Errorf("-stream-dir needs the parallel engine (drop -seq)"))
		case *shardDir != "":
			fatal(fmt.Errorf("-stream-dir and -shard-dir are mutually exclusive edge destinations"))
		case *out != "":
			fatal(fmt.Errorf("-stream-dir writes per-rank shards; it is incompatible with -o (convert with pa-analyze -stream-dir -export-binary)"))
		}
		res, err := pagen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		if *metrics != "" {
			if err := writeMetrics(*metrics, pagen.Metrics(res, cfg)); err != nil {
				fatal(err)
			}
		}
		var m, blocks, bytes int64
		for _, st := range res.Ranks {
			m += st.Edges
			blocks += st.SinkBlocks
			bytes += st.SinkBytes
		}
		fmt.Fprintf(os.Stderr, "streamed %d edges (%d blocks, %d bytes) to %s in %v (%.3g edges/s)\n",
			m, blocks, bytes, *streamDir, res.Elapsed, pagen.EdgesPerSecond(res))
		return
	}

	if *shardDir != "" {
		res, err := pagen.GenerateToShards(cfg, *shardDir)
		if err != nil {
			fatal(err)
		}
		if *metrics != "" {
			if err := writeMetrics(*metrics, pagen.Metrics(res, cfg)); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %d shards to %s in %v (%.3g edges/s)\n",
			len(res.Ranks), *shardDir, res.Elapsed, pagen.EdgesPerSecond(res))
		return
	}

	var g *pagen.Graph
	if *seq {
		var err error
		g, _, err = pagen.GenerateSeq(cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err := pagen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		g = res.Graph
		if *metrics != "" {
			if err := writeMetrics(*metrics, pagen.Metrics(res, cfg)); err != nil {
				fatal(err)
			}
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "generated %d edges in %v (%.3g edges/s)\n",
				g.M(), res.Elapsed, pagen.EdgesPerSecond(res))
			for _, st := range res.Ranks {
				fmt.Fprintf(os.Stderr,
					"rank %3d: nodes=%d edges=%d reqS=%d reqR=%d resS=%d resR=%d frames=%d retries=%d load=%d\n",
					st.Rank, st.Nodes, st.Edges,
					st.Comm.RequestsSent, st.Comm.RequestsRecv,
					st.Comm.ResolvedSent, st.Comm.ResolvedRecv,
					st.Comm.FramesSent, st.Retries, st.TotalLoad())
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	var err error
	switch *format {
	case "text":
		err = graph.WriteText(w, g)
	case "binary":
		err = graph.WriteBinary(w, g)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
}

// writeMetrics exports the run metrics JSON to path ("-" = stderr).
func writeMetrics(path string, m *pagen.RunMetrics) error {
	if m == nil {
		return fmt.Errorf("no metrics collected")
	}
	if path == "-" {
		return m.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pagen:", err)
	os.Exit(1)
}
