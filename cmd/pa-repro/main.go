// Command pa-repro regenerates every figure of the paper's evaluation in
// one run, writing the TSV series and a summary to an output directory.
// It is the one-command version of the pa-lcp / pa-dist / pa-scale /
// pa-load / pa-chain / pa-accuracy tools, at sizes scaled by -scale.
//
// Usage:
//
//	pa-repro -out results -scale 1.0
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pagen/internal/bench"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/svgplot"
)

var kinds = []partition.Kind{partition.KindUCP, partition.KindLCP, partition.KindRRP}

func main() {
	var (
		out   = flag.String("out", "results", "output directory")
		scale = flag.Float64("scale", 1.0, "size multiplier for every experiment")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	sz := func(base int64) int64 {
		v := int64(float64(base) * *scale)
		if v < 1000 {
			v = 1000
		}
		return v
	}
	start := time.Now()

	// Figure 3: exact Eqn-10 vs LCP.
	step("Figure 3 (LCP solver)", func(f *os.File) error {
		rows := bench.Fig3(sz(1_000_000), 160, partition.DefaultB)
		exact := svgplot.Series{Name: "exact Eqn 10"}
		linear := svgplot.Series{Name: "LCP linear"}
		for _, r := range rows {
			exact.X = append(exact.X, float64(r.Rank))
			exact.Y = append(exact.Y, float64(r.ExactSz))
			linear.X = append(linear.X, float64(r.Rank))
			linear.Y = append(linear.Y, float64(r.LinearSz))
		}
		plot(*out, "fig3.svg", &svgplot.Plot{
			Title: "Figure 3: nodes per processor", XLabel: "processor rank", YLabel: "nodes",
			Series: []svgplot.Series{exact, linear},
		})
		return bench.WriteFig3(f, rows)
	}, *out, "fig3.tsv")

	// Figure 4: degree distribution.
	step("Figure 4 (degree distribution)", func(f *os.File) error {
		res, err := bench.Fig4(model.Params{N: sz(1_000_000), X: 4, P: 0.5}, partition.KindRRP, 8, *seed)
		if err != nil {
			return err
		}
		rep := res.Report
		s := svgplot.Series{Name: "P(degree)"}
		for _, b := range rep.DegreeHistogram.LogBins(1.5) {
			s.X = append(s.X, b.Center)
			s.Y = append(s.Y, b.Density/float64(rep.DegreeHistogram.Total()))
		}
		plot(*out, "fig4.svg", &svgplot.Plot{
			Title:  fmt.Sprintf("Figure 4: degree distribution (gamma=%.2f)", rep.Gamma),
			XLabel: "degree", YLabel: "probability",
			LogX: true, LogY: true, Markers: true,
			Series: []svgplot.Series{s},
		})
		fmt.Fprintf(f, "# gamma=%.3f KS=%.4f loglog_slope=%.3f R2=%.4f\n",
			rep.Gamma, rep.GammaKS, rep.LogLogSlope, rep.LogLogR2)
		return rep.WriteDistributionTSV(f)
	}, *out, "fig4.tsv")

	// Figure 5: strong scaling.
	step("Figure 5 (strong scaling)", func(f *os.File) error {
		rows, err := bench.StrongScaling(model.Params{N: sz(1_000_000), X: 6, P: 0.5},
			kinds, []int{1, 2, 4, 8, 16, 32, 64, 128}, *seed)
		if err != nil {
			return err
		}
		plot(*out, "fig5.svg", scalingPlot("Figure 5: strong scaling (model speedup)",
			"processors", "speedup", rows, func(r bench.ScalingRow) (float64, float64) {
				return float64(r.P), r.ModelSpeedup
			}))
		return bench.WriteScaling(f, rows)
	}, *out, "fig5.tsv")

	// Figure 6: weak scaling.
	step("Figure 6 (weak scaling)", func(f *os.File) error {
		rows, err := bench.WeakScaling(sz(200_000), 6, 0.5, kinds, []int{2, 4, 8, 16, 32}, *seed)
		if err != nil {
			return err
		}
		plot(*out, "fig6.svg", scalingPlot("Figure 6: weak scaling (model efficiency)",
			"processors", "efficiency", rows, func(r bench.ScalingRow) (float64, float64) {
				return float64(r.P), r.ModelSpeedup / float64(r.P)
			}))
		return bench.WriteScaling(f, rows)
	}, *out, "fig6.tsv")

	// Section 4.5 headline.
	step("Section 4.5 (headline)", func(f *os.File) error {
		res, err := bench.Headline(model.Params{N: sz(2_000_000), X: 5, P: 0.5}, 8, *seed)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(f, "n=%d x=%d ranks=%d edges=%d elapsed=%v edges_per_sec=%.4g\n",
			res.N, res.X, res.P, res.Edges, res.Elapsed, res.EdgesPerSec)
		return err
	}, *out, "headline.txt")

	// Figure 7: load distributions.
	step("Figure 7 (load distributions)", func(f *os.File) error {
		rows, err := bench.Fig7(model.Params{N: sz(100_000), X: 10, P: 0.5}, kinds, 160, *seed)
		if err != nil {
			return err
		}
		byScheme := map[string]*svgplot.Series{}
		var order []string
		for _, r := range rows {
			s, ok := byScheme[r.Scheme]
			if !ok {
				s = &svgplot.Series{Name: r.Scheme}
				byScheme[r.Scheme] = s
				order = append(order, r.Scheme)
			}
			s.X = append(s.X, float64(r.Rank))
			s.Y = append(s.Y, float64(r.Total))
		}
		p := &svgplot.Plot{
			Title: "Figure 7d: total load per processor", XLabel: "processor rank", YLabel: "total load",
		}
		for _, name := range order {
			p.Series = append(p.Series, *byScheme[name])
		}
		plot(*out, "fig7.svg", p)
		return bench.WriteFig7(f, rows)
	}, *out, "fig7.tsv")

	// Theorem 3.3 chains.
	step("Theorem 3.3 (dependency chains)", func(f *os.File) error {
		res, err := bench.Chains(model.Params{N: sz(1_000_000), X: 1, P: 0.5}, *seed)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(f, "n=%d mean=%.4f max=%d ln_n=%.2f 5ln_n=%.2f\n",
			res.N, res.Mean, res.Max, res.LogN, res.FiveLogN)
		return err
	}, *out, "chains.txt")

	fmt.Printf("all experiments regenerated into %s in %v\n", *out, time.Since(start).Round(time.Millisecond))
}

// scalingPlot builds a per-scheme line chart from scaling rows.
func scalingPlot(title, xlabel, ylabel string, rows []bench.ScalingRow,
	point func(bench.ScalingRow) (float64, float64)) *svgplot.Plot {
	byScheme := map[string]*svgplot.Series{}
	var order []string
	for _, r := range rows {
		s, ok := byScheme[r.Scheme]
		if !ok {
			s = &svgplot.Series{Name: r.Scheme}
			byScheme[r.Scheme] = s
			order = append(order, r.Scheme)
		}
		x, y := point(r)
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	p := &svgplot.Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Markers: true}
	for _, name := range order {
		p.Series = append(p.Series, *byScheme[name])
	}
	return p
}

// plot renders an SVG next to the TSVs; plotting failures are fatal like
// any other step failure.
func plot(dir, file string, p *svgplot.Plot) {
	f, err := os.Create(filepath.Join(dir, file))
	if err != nil {
		fatal(err)
	}
	if err := p.Render(f); err != nil {
		f.Close()
		fatal(fmt.Errorf("%s: %w", file, err))
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// step runs one experiment into its output file, reporting progress.
func step(name string, fn func(*os.File) error, dir, file string) {
	fmt.Printf("%-36s -> %s\n", name, file)
	f, err := os.Create(filepath.Join(dir, file))
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-repro:", err)
	os.Exit(1)
}
