// Command pa-tcp runs one rank of the parallel generator as its own OS
// process over TCP — genuine distributed-memory execution, the role one
// MPI rank plays in the paper's runs. Start P processes with the same
// -addrs list and ranks 0..P-1 (on one host or many); each writes its
// edge shard, and the shards union to the output graph.
//
// Usage (2 ranks on localhost):
//
//	pa-tcp -rank 0 -addrs 127.0.0.1:9500,127.0.0.1:9501 -n 100000 -x 4 -o shard0.bin &
//	pa-tcp -rank 1 -addrs 127.0.0.1:9500,127.0.0.1:9501 -n 100000 -x 4 -o shard1.bin
//
// After the generation protocol terminates, the ranks run a sequence of
// collectives (internal/coll) to assemble a cluster-wide summary at rank
// 0: total edges, per-rank loads, and aggregate message counters. -stats
// prints per-rank and cluster statistics to stderr; -metrics FILE
// additionally exports the rank's full metric record (counters,
// wait-chain histogram, per-node received-message load) as JSON, "-"
// meaning stderr.
//
// See examples/distributed for a driver that spawns the ranks and merges
// the shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pagen/internal/coll"
	"pagen/internal/comm"
	"pagen/internal/core"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/obs"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

func main() {
	var (
		rank      = flag.Int("rank", 0, "this process's rank")
		addrs     = flag.String("addrs", "", "comma-separated listen addresses, one per rank")
		n         = flag.Int64("n", 100000, "number of nodes")
		x         = flag.Int("x", 4, "edges per new node")
		p         = flag.Float64("p", 0.5, "direct-attachment probability")
		scheme    = flag.String("scheme", "RRP", "partitioning scheme")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "generation goroutines for this rank (0 = GOMAXPROCS)")
		out       = flag.String("o", "", "output shard file (binary edge list; default stdout)")
		stats     = flag.Bool("stats", false, "print rank and cluster statistics to stderr")
		metrics   = flag.String("metrics", "", "write this rank's metrics JSON to this file (\"-\" = stderr)")
		handshake = flag.Duration("handshake-timeout", transport.DefaultHandshakeTimeout,
			"mesh-establishment deadline (a peer missing past it is an error, not a hang)")
	)
	flag.Parse()

	addrList := strings.Split(*addrs, ",")
	if len(addrList) < 1 || *addrs == "" {
		fatal(fmt.Errorf("need -addrs with one address per rank"))
	}
	kind, err := partition.ParseKind(*scheme)
	if err != nil {
		fatal(err)
	}
	part, err := partition.New(kind, *n, len(addrList))
	if err != nil {
		fatal(err)
	}

	tr, err := transport.NewTCPWithConfig(*rank, addrList, transport.TCPConfig{
		HandshakeTimeout: *handshake,
	})
	if err != nil {
		fatal(err)
	}
	defer tr.Close()

	res, err := core.RunRank(tr, core.Options{
		Params:          model.Params{N: *n, X: *x, P: *p},
		Part:            part,
		Seed:            *seed,
		Workers:         *workers,
		CollectNodeLoad: *metrics != "",
	})
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	if *stats {
		fmt.Fprintf(os.Stderr, "rank %d: nodes=%d edges=%d reqS=%d reqR=%d frames=%d bytes=%d wall=%v busy=%v\n",
			st.Rank, st.Nodes, st.Edges, st.Comm.RequestsSent, st.Comm.RequestsRecv,
			st.Comm.FramesSent, st.Comm.BytesSent, st.WallTime, st.BusyTime)
	}

	// Cluster-wide summary: a back-to-back collective sequence over the
	// same mesh (the engine protocol has terminated, so the collectives
	// have the channel to themselves). The sequenced tag protocol keeps
	// the coordinator sane when fast ranks race ahead to the next
	// operation — the 4-rank "tag mismatch" failure mode of the
	// unsequenced design.
	cs := coll.New(comm.New(tr, comm.Config{}))
	edges, err := cs.Gather(st.Edges)
	if err != nil {
		fatal(err)
	}
	maxLoad, err := cs.AllReduceMax(st.TotalLoad())
	if err != nil {
		fatal(err)
	}
	totalReq, err := cs.AllReduceSum(st.Comm.RequestsSent)
	if err != nil {
		fatal(err)
	}
	totalBytes, err := cs.AllReduceSum(st.Comm.BytesSent)
	if err != nil {
		fatal(err)
	}
	if *rank == 0 && *stats {
		var total int64
		for _, e := range edges {
			total += e
		}
		fmt.Fprintf(os.Stderr, "cluster: %d edges across %d ranks, max rank load %d, %d requests, %d frame bytes\n",
			total, len(addrList), maxLoad, totalReq, totalBytes)
	}

	if *metrics != "" {
		if err := writeMetrics(*metrics, *rank, res, part, *n, *x, *p, len(addrList), *scheme, *seed); err != nil {
			fatal(err)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	shard := &graph.Graph{N: *n, Edges: res.Edges}
	if err := graph.WriteBinary(w, shard); err != nil {
		fatal(err)
	}
}

// writeMetrics exports this rank's metric record as JSON. Unlike the
// in-process pagen run, each pa-tcp rank only sees its own node set, so
// the node-load curve covers this rank's nodes (union the per-rank files
// for the full Lemma 3.4 curve).
func writeMetrics(path string, rank int, res *core.RankResult, part partition.Scheme,
	n int64, x int, p float64, ranks int, scheme string, seed uint64) error {
	m := &obs.RunMetrics{
		N:            n,
		X:            x,
		P:            p,
		Ranks:        ranks,
		Scheme:       scheme,
		Seed:         seed,
		ElapsedNanos: res.Stats.WallTime.Nanoseconds(),
		PerRank:      []obs.RankMetrics{res.Stats.Metrics()},
	}
	if res.Stats.NodeLoad != nil {
		samples := core.NodeLoadSamples(part, rank, res.Stats.NodeLoad)
		curve := obs.BinNodeLoad(samples, n, x, p, 0)
		m.NodeLoad = &curve
	}
	if path == "-" {
		return m.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-tcp:", err)
	os.Exit(1)
}
