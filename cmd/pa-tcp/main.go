// Command pa-tcp runs one rank of the parallel generator as its own OS
// process over TCP — genuine distributed-memory execution, the role one
// MPI rank plays in the paper's runs. Start P processes with the same
// -addrs list and ranks 0..P-1 (on one host or many); each writes its
// edge shard, and the shards union to the output graph.
//
// Usage (2 ranks on localhost):
//
//	pa-tcp -rank 0 -addrs 127.0.0.1:9500,127.0.0.1:9501 -n 100000 -x 4 -o shard0.bin &
//	pa-tcp -rank 1 -addrs 127.0.0.1:9500,127.0.0.1:9501 -n 100000 -x 4 -o shard1.bin
//
// See examples/distributed for a driver that spawns the ranks and merges
// the shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pagen/internal/coll"
	"pagen/internal/comm"
	"pagen/internal/core"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

func main() {
	var (
		rank   = flag.Int("rank", 0, "this process's rank")
		addrs  = flag.String("addrs", "", "comma-separated listen addresses, one per rank")
		n      = flag.Int64("n", 100000, "number of nodes")
		x      = flag.Int("x", 4, "edges per new node")
		p      = flag.Float64("p", 0.5, "direct-attachment probability")
		scheme = flag.String("scheme", "RRP", "partitioning scheme")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "", "output shard file (binary edge list; default stdout)")
		stats  = flag.Bool("stats", false, "print rank statistics to stderr")
	)
	flag.Parse()

	addrList := strings.Split(*addrs, ",")
	if len(addrList) < 1 || *addrs == "" {
		fatal(fmt.Errorf("need -addrs with one address per rank"))
	}
	kind, err := partition.ParseKind(*scheme)
	if err != nil {
		fatal(err)
	}
	part, err := partition.New(kind, *n, len(addrList))
	if err != nil {
		fatal(err)
	}

	tr, err := transport.NewTCP(*rank, addrList)
	if err != nil {
		fatal(err)
	}
	defer tr.Close()

	res, err := core.RunRank(tr, core.Options{
		Params: model.Params{N: *n, X: *x, P: *p},
		Part:   part,
		Seed:   *seed,
	})
	if err != nil {
		fatal(err)
	}
	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "rank %d: nodes=%d edges=%d reqS=%d reqR=%d wall=%v busy=%v\n",
			st.Rank, st.Nodes, st.Edges, st.Comm.RequestsSent, st.Comm.RequestsRecv,
			st.WallTime, st.BusyTime)
	}

	// Cluster-wide summary: gather per-rank metrics at rank 0 over the
	// same mesh (the engine protocol has terminated, so the collectives
	// have the channel to themselves).
	cm := comm.New(tr, comm.Config{})
	edges, err := coll.Gather(cm, 1, res.Stats.Edges)
	if err != nil {
		fatal(err)
	}
	maxLoad, err := coll.AllReduceMax(cm, 2, res.Stats.TotalLoad())
	if err != nil {
		fatal(err)
	}
	if *rank == 0 {
		var total int64
		for _, e := range edges {
			total += e
		}
		fmt.Fprintf(os.Stderr, "cluster: %d edges across %d ranks, max rank load %d\n",
			total, len(addrList), maxLoad)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	shard := &graph.Graph{N: *n, Edges: res.Edges}
	if err := graph.WriteBinary(w, shard); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-tcp:", err)
	os.Exit(1)
}
