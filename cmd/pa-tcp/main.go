// Command pa-tcp runs one rank of the parallel generator as its own OS
// process over TCP — genuine distributed-memory execution, the role one
// MPI rank plays in the paper's runs. Start P processes with the same
// -addrs list and ranks 0..P-1 (on one host or many); each writes its
// edge shard, and the shards union to the output graph.
//
// Usage (2 ranks on localhost):
//
//	pa-tcp -rank 0 -addrs 127.0.0.1:9500,127.0.0.1:9501 -n 100000 -x 4 -o shard0.bin &
//	pa-tcp -rank 1 -addrs 127.0.0.1:9500,127.0.0.1:9501 -n 100000 -x 4 -o shard1.bin
//
// After the generation protocol terminates, the ranks run a sequence of
// collectives (internal/coll) to assemble a cluster-wide summary at rank
// 0: total edges, per-rank loads, and aggregate message counters. -stats
// prints per-rank and cluster statistics to stderr; -metrics FILE
// additionally exports the rank's full metric record (counters,
// wait-chain histogram, per-node received-message load) as JSON, "-"
// meaning stderr.
//
// Long runs can checkpoint: -checkpoint-dir DIR -checkpoint-every N
// makes every rank snapshot its engine state to DIR at cooperative
// epochs, and -resume restarts the cluster from the newest epoch all
// ranks committed (see docs/CHECKPOINT_FORMAT.md and
// docs/OPERATIONS.md). The resumed run produces the byte-identical
// graph an uninterrupted run would have.
//
// For runs whose edge list exceeds RAM, -stream-dir DIR makes each rank
// spill its edges straight into a compressed, CRC-protected shard file
// (docs/SHARD_FORMAT.md) with bounded resident memory, instead of
// materialising them for -o. It composes with checkpointing: on resume
// each rank truncates its shard to the snapshot's durable mark and
// regenerates exactly the missing suffix, so the merged output stays
// byte-identical to an uninterrupted run. Read the shards with
// pa-analyze -stream-dir.
//
// -supervise turns pa-tcp into a single-host cluster supervisor: it
// spawns one child rank per address, and when any child dies it kills
// the survivors and relaunches the whole cluster with -resume, up to
// -max-restarts times:
//
//	pa-tcp -supervise -addrs 127.0.0.1:9500,127.0.0.1:9501 \
//	    -n 1000000 -x 4 -checkpoint-dir ck -checkpoint-every 5000000 \
//	    -shard-dir out
//
// With -stream-dir in place of -shard-dir the supervised cluster
// streams: kills mid-run (even mid-flush) resume without duplicating or
// dropping edges.
//
// pa-tcp ranks are separate OS processes, so they only speak
// -transport=tcp (the default; the flag exists for symmetry with pagen
// and rejects anything else). To run co-located ranks over the shared-
// memory or codec-ablation transports, run them in one process:
// pagen -ranks P -transport=shm|local (docs/OPERATIONS.md §8 has the
// single-host decision guide).
//
// See examples/distributed for a driver that spawns the ranks and merges
// the shards.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"pagen/internal/ckpt"
	"pagen/internal/coll"
	"pagen/internal/comm"
	"pagen/internal/core"
	"pagen/internal/graph"
	"pagen/internal/model"
	"pagen/internal/obs"
	"pagen/internal/partition"
	"pagen/internal/transport"
)

func main() {
	var (
		rank      = flag.Int("rank", 0, "this process's rank")
		addrs     = flag.String("addrs", "", "comma-separated listen addresses, one per rank")
		n         = flag.Int64("n", 100000, "number of nodes")
		x         = flag.Int("x", 4, "edges per new node")
		p         = flag.Float64("p", 0.5, "direct-attachment probability")
		scheme    = flag.String("scheme", "RRP", "partitioning scheme")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "generation goroutines for this rank (0 = GOMAXPROCS)")
		transp    = flag.String("transport", "tcp", "rank-to-rank transport; pa-tcp only speaks tcp (co-located ranks without process isolation: use pagen -transport=shm)")
		hub       = flag.Int64("hub-prefix", 0, "hub-prefix cache size H (0 = auto, <0 = off); all ranks must agree")
		resolve   = flag.String("resolve", "wire", "non-local dependency resolution: wire or recompute; all ranks must agree")
		rcDepth   = flag.Int("recompute-depth", 0, "recompute replay chain depth cap before wire fallback (0 = ~2*log2(n))")
		out       = flag.String("o", "", "output shard file (binary edge list; default stdout)")
		stats     = flag.Bool("stats", false, "print rank and cluster statistics to stderr")
		metrics   = flag.String("metrics", "", "write this rank's metrics JSON to this file (\"-\" = stderr)")
		handshake = flag.Duration("handshake-timeout", transport.DefaultHandshakeTimeout,
			"mesh-establishment deadline (a peer missing past it is an error, not a hang)")
		ckptDir     = flag.String("checkpoint-dir", "", "write per-rank snapshots to this directory (shared across ranks)")
		ckptN       = flag.Int64("checkpoint-every", 0, "protocol events between checkpoint epochs (requires -checkpoint-dir)")
		ckptKeep    = flag.Int("checkpoint-keep", 0, "full epochs to retain per rank (0 = default)")
		ckptFull    = flag.Int("checkpoint-full-every", 0, "full-snapshot cadence: every Nth epoch is full, the rest are incremental deltas (0 or 1 = all full)")
		resume      = flag.Bool("resume", false, "resume from the latest restorable epoch in -checkpoint-dir")
		supervise   = flag.Bool("supervise", false, "run as a supervisor: spawn all ranks locally, restart the cluster from the last checkpoint on crash")
		maxRestarts = flag.Int("max-restarts", 3, "restart attempts before the supervisor gives up")
		shardDir    = flag.String("shard-dir", "", "supervisor mode: directory the child ranks write their shards to")
		streamDir   = flag.String("stream-dir", "", "spill this rank's edges to a compressed shard file under this directory with bounded memory (docs/SHARD_FORMAT.md); composes with -checkpoint-dir and -supervise")
		streamBlock = flag.Int("stream-block-edges", 0, "edge records buffered per stream block before a sorted flush (0 = 65536)")
	)
	flag.Parse()

	addrList := strings.Split(*addrs, ",")
	if len(addrList) < 1 || *addrs == "" {
		fatal(fmt.Errorf("need -addrs with one address per rank"))
	}
	if *transp != "tcp" {
		fatal(fmt.Errorf("-transport %q: pa-tcp ranks are separate processes and only speak tcp; for shm or local run the ranks in one process with pagen -transport=%s", *transp, *transp))
	}

	ck := checkpointOptions(*ckptDir, *ckptN, *ckptKeep, *ckptFull, *resume)

	mode, err := core.ParseResolveMode(*resolve)
	if err != nil {
		fatal(err)
	}

	if *supervise {
		runSupervisor(addrList, supervisorConfig{
			n: *n, x: *x, p: *p, scheme: *scheme, seed: *seed,
			workers: *workers, hub: *hub, stats: *stats, handshake: *handshake,
			resolve: *resolve, rcDepth: *rcDepth,
			ckptDir: *ckptDir, ckptN: *ckptN, ckptKeep: *ckptKeep, ckptFull: *ckptFull,
			resume: *resume, maxRestarts: *maxRestarts, shardDir: *shardDir,
			streamDir: *streamDir, streamBlock: *streamBlock,
		})
		return
	}
	if *shardDir != "" {
		fatal(fmt.Errorf("-shard-dir is a supervisor-mode flag (use -o for a single rank)"))
	}
	if *streamDir != "" && *out != "" {
		fatal(fmt.Errorf("-stream-dir streams this rank's shard itself; it is incompatible with -o"))
	}

	if ck != nil && ck.Resume {
		reportResumeScan(*ckptDir, *rank)
	}
	kind, err := partition.ParseKind(*scheme)
	if err != nil {
		fatal(err)
	}
	part, err := partition.New(kind, *n, len(addrList))
	if err != nil {
		fatal(err)
	}

	tr, err := transport.NewTCPWithConfig(*rank, addrList, transport.TCPConfig{
		HandshakeTimeout: *handshake,
	})
	if err != nil {
		fatal(err)
	}
	defer tr.Close()

	res, err := core.RunRank(tr, core.Options{
		Params:           model.Params{N: *n, X: *x, P: *p},
		Part:             part,
		Seed:             *seed,
		Workers:          *workers,
		HubPrefix:        *hub,
		Resolve:          mode,
		RecomputeDepth:   *rcDepth,
		// Node-load counters are the one metrics input snapshots do not
		// capture; under checkpointing -metrics still exports everything
		// else (pause/write histograms included).
		CollectNodeLoad:  *metrics != "" && ck == nil,
		Checkpoint:       ck,
		StreamDir:        *streamDir,
		StreamBlockEdges: *streamBlock,
	})
	if err != nil {
		fatal(err)
	}
	st := res.Stats
	if *stats {
		fmt.Fprintf(os.Stderr, "rank %d: nodes=%d edges=%d reqS=%d reqR=%d frames=%d bytes=%d wall=%v busy=%v\n",
			st.Rank, st.Nodes, st.Edges, st.Comm.RequestsSent, st.Comm.RequestsRecv,
			st.Comm.FramesSent, st.Comm.BytesSent, st.WallTime, st.BusyTime)
		if *streamDir != "" {
			fmt.Fprintf(os.Stderr, "rank %d: sink blocks=%d bytes=%d fsyncs=%d fsync-stall=%v\n",
				st.Rank, st.SinkBlocks, st.SinkBytes, st.SinkFsyncs, st.SinkFsyncTime)
		}
	}

	// Cluster-wide summary: a back-to-back collective sequence over the
	// same mesh (the engine protocol has terminated, so the collectives
	// have the channel to themselves). The sequenced tag protocol keeps
	// the coordinator sane when fast ranks race ahead to the next
	// operation — the 4-rank "tag mismatch" failure mode of the
	// unsequenced design.
	cs := coll.New(comm.New(tr, comm.Config{}))
	edges, err := cs.Gather(st.Edges)
	if err != nil {
		fatal(err)
	}
	maxLoad, err := cs.AllReduceMax(st.TotalLoad())
	if err != nil {
		fatal(err)
	}
	totalReq, err := cs.AllReduceSum(st.Comm.RequestsSent)
	if err != nil {
		fatal(err)
	}
	totalBytes, err := cs.AllReduceSum(st.Comm.BytesSent)
	if err != nil {
		fatal(err)
	}
	if *rank == 0 && *stats {
		var total int64
		for _, e := range edges {
			total += e
		}
		fmt.Fprintf(os.Stderr, "cluster: %d edges across %d ranks, max rank load %d, %d requests, %d frame bytes\n",
			total, len(addrList), maxLoad, totalReq, totalBytes)
	}

	if *metrics != "" {
		if err := writeMetrics(*metrics, *rank, res, part, *n, *x, *p, len(addrList), *scheme, *seed); err != nil {
			fatal(err)
		}
	}

	if *streamDir != "" {
		// The engine already streamed this rank's shard to disk
		// (shard-<rank>-of-<ranks>.pags under -stream-dir).
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	shard := &graph.Graph{N: *n, Edges: res.Edges}
	if err := graph.WriteBinary(w, shard); err != nil {
		fatal(err)
	}
}

// writeMetrics exports this rank's metric record as JSON. Unlike the
// in-process pagen run, each pa-tcp rank only sees its own node set, so
// the node-load curve covers this rank's nodes (union the per-rank files
// for the full Lemma 3.4 curve).
func writeMetrics(path string, rank int, res *core.RankResult, part partition.Scheme,
	n int64, x int, p float64, ranks int, scheme string, seed uint64) error {
	m := &obs.RunMetrics{
		N:            n,
		X:            x,
		P:            p,
		Ranks:        ranks,
		Scheme:       scheme,
		Seed:         seed,
		ElapsedNanos: res.Stats.WallTime.Nanoseconds(),
		PerRank:      []obs.RankMetrics{res.Stats.Metrics()},
	}
	if res.Stats.NodeLoad != nil {
		samples := core.NodeLoadSamples(part, rank, res.Stats.NodeLoad)
		curve := obs.BinNodeLoad(samples, n, x, p, 0)
		m.NodeLoad = &curve
	}
	if path == "-" {
		return m.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkpointOptions translates the checkpoint flags to engine options
// (nil when checkpointing is not requested).
func checkpointOptions(dir string, every int64, keep, fullEvery int, resume bool) *core.CheckpointOptions {
	if dir == "" && every == 0 && !resume {
		return nil
	}
	return &core.CheckpointOptions{Dir: dir, Every: every, Keep: keep, FullEvery: fullEvery, Resume: resume}
}

// reportResumeScan previews what a resume will find for this rank:
// which epoch its newest complete snapshot holds, and which snapshot
// files were skipped as torn or corrupt (each is a warning — the run
// falls back past them, but an operator should know the newest data was
// damaged). The engine re-reads and cross-validates the snapshot during
// resume negotiation; this scan only exists for the operator.
func reportResumeScan(dir string, rank int) {
	snap, skipped, err := ckpt.Latest(dir, rank)
	if err != nil {
		fatal(fmt.Errorf("resume pre-scan: %w", err))
	}
	for _, name := range skipped {
		fmt.Fprintf(os.Stderr, "pa-tcp: rank %d: warning: skipping damaged snapshot %s\n", rank, name)
	}
	switch {
	case snap == nil:
		fmt.Fprintf(os.Stderr, "pa-tcp: rank %d: no usable snapshot in %s, starting fresh\n", rank, dir)
	default:
		fmt.Fprintf(os.Stderr, "pa-tcp: rank %d: newest complete snapshot is epoch %d (cluster resumes from the minimum across ranks)\n",
			rank, snap.Epoch)
	}
}

// supervisorConfig carries the parsed flags a supervisor forwards to its
// child ranks.
type supervisorConfig struct {
	n           int64
	x           int
	p           float64
	scheme      string
	seed        uint64
	workers     int
	hub         int64
	resolve     string
	rcDepth     int
	stats       bool
	handshake   time.Duration
	ckptDir     string
	ckptN       int64
	ckptKeep    int
	ckptFull    int
	resume      bool
	maxRestarts int
	shardDir    string
	streamDir   string
	streamBlock int
}

// runSupervisor spawns one pa-tcp child process per address on this
// host and babysits the cluster: if any child exits non-zero, the
// survivors are killed (a rank cannot finish without its peers anyway)
// and the whole cluster is relaunched with -resume, restarting from the
// newest epoch every rank committed. Attempts are bounded by
// -max-restarts. Checkpointing must be enabled — without snapshots a
// restart would silently redo all work.
func runSupervisor(addrList []string, sc supervisorConfig) {
	if sc.ckptDir == "" || sc.ckptN <= 0 {
		fatal(fmt.Errorf("-supervise needs -checkpoint-dir and -checkpoint-every > 0 (restarts resume from snapshots)"))
	}
	switch {
	case sc.shardDir == "" && sc.streamDir == "":
		fatal(fmt.Errorf("-supervise needs -shard-dir or -stream-dir for the child ranks' output"))
	case sc.shardDir != "" && sc.streamDir != "":
		fatal(fmt.Errorf("-shard-dir and -stream-dir are mutually exclusive child outputs"))
	}
	outDir := sc.shardDir
	if outDir == "" {
		outDir = sc.streamDir
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	resume := sc.resume
	for attempt := 0; ; attempt++ {
		err := superviseOnce(exe, addrList, sc, resume)
		if err == nil {
			fmt.Fprintf(os.Stderr, "pa-tcp: supervisor: all %d ranks completed\n", len(addrList))
			return
		}
		if attempt >= sc.maxRestarts {
			fatal(fmt.Errorf("supervisor: giving up after %d restarts: %w", sc.maxRestarts, err))
		}
		fmt.Fprintf(os.Stderr, "pa-tcp: supervisor: cluster failed (%v), restart %d/%d from last checkpoint\n",
			err, attempt+1, sc.maxRestarts)
		resume = true // every relaunch resumes from the newest complete epoch
		time.Sleep(500 * time.Millisecond)
	}
}

// superviseOnce launches the full cluster once and waits for it. On the
// first child failure the remaining children are killed and the first
// error is returned after every process has been reaped.
func superviseOnce(exe string, addrList []string, sc supervisorConfig, resume bool) error {
	ranks := len(addrList)
	cmds := make([]*exec.Cmd, ranks)
	for i := 0; i < ranks; i++ {
		args := []string{
			"-rank", strconv.Itoa(i),
			"-addrs", strings.Join(addrList, ","),
			"-n", strconv.FormatInt(sc.n, 10),
			"-x", strconv.Itoa(sc.x),
			"-p", strconv.FormatFloat(sc.p, 'g', -1, 64),
			"-scheme", sc.scheme,
			"-seed", strconv.FormatUint(sc.seed, 10),
			"-workers", strconv.Itoa(sc.workers),
			"-hub-prefix", strconv.FormatInt(sc.hub, 10),
			"-resolve", sc.resolve,
			"-recompute-depth", strconv.Itoa(sc.rcDepth),
			"-handshake-timeout", sc.handshake.String(),
			"-checkpoint-dir", sc.ckptDir,
			"-checkpoint-every", strconv.FormatInt(sc.ckptN, 10),
			"-checkpoint-keep", strconv.Itoa(sc.ckptKeep),
			"-checkpoint-full-every", strconv.Itoa(sc.ckptFull),
		}
		if sc.streamDir != "" {
			args = append(args,
				"-stream-dir", sc.streamDir,
				"-stream-block-edges", strconv.Itoa(sc.streamBlock))
		} else {
			args = append(args, "-o", graph.ShardPath(sc.shardDir, i, ranks))
		}
		if resume {
			args = append(args, "-resume")
		}
		if sc.stats && i == 0 {
			args = append(args, "-stats")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:i] {
				c.Process.Kill()
				c.Wait()
			}
			return fmt.Errorf("spawn rank %d: %w", i, err)
		}
		cmds[i] = cmd
	}

	type exit struct {
		rank int
		err  error
	}
	exits := make(chan exit, ranks)
	for i, cmd := range cmds {
		go func(i int, cmd *exec.Cmd) {
			exits <- exit{i, cmd.Wait()}
		}(i, cmd)
	}
	var firstErr error
	for done := 0; done < ranks; done++ {
		e := <-exits
		if e.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rank %d: %w", e.rank, e.err)
			// Peers cannot terminate without the dead rank; take the
			// whole cluster down so the restart starts from a clean slate.
			for _, cmd := range cmds {
				cmd.Process.Kill()
			}
		}
	}
	return firstErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-tcp:", err)
	os.Exit(1)
}
