// Command pa-lcp regenerates the paper's Figure 3: the distribution of
// nodes among processors under the exact solution of the load-balance
// equation (Eqn 10) versus the linear approximation (LCP).
//
// Usage:
//
//	pa-lcp -n 100000000 -ranks 160
package main

import (
	"flag"
	"fmt"
	"os"

	"pagen/internal/bench"
	"pagen/internal/partition"
)

func main() {
	var (
		n     = flag.Int64("n", 1000000, "number of nodes (paper: 1e8)")
		ranks = flag.Int("ranks", 160, "number of processors (paper: 160)")
		b     = flag.Float64("b", partition.DefaultB, "load constant b = 1 + c of Eqn 10")
	)
	flag.Parse()

	rows := bench.Fig3(*n, *ranks, *b)
	fmt.Printf("# Figure 3: exact Eqn-10 solution vs LCP linear approximation (n=%d, P=%d, b=%g)\n", *n, *ranks, *b)
	if err := bench.WriteFig3(os.Stdout, rows); err != nil {
		fmt.Fprintln(os.Stderr, "pa-lcp:", err)
		os.Exit(1)
	}
}
