// Command pa-scale regenerates the paper's scaling experiments:
//
//	-mode strong   Figure 5 (fixed n, varying P; paper: n=1e9, x=6)
//	-mode weak     Figure 6 (fixed edges per processor; paper: 1e7/proc)
//	-mode headline Section 4.5 (largest network, RRP; paper: 50B edges
//	               in 123 s on 768 processors)
//
// Speedups are reported both as measured wall time (bounded by the
// physical core count of the host) and from the per-rank load model
// (nodes + messages, the paper's Section 4.6 measure), which reproduces
// the figures' shape on any host. -schemes picks the partitioning
// schemes swept (default UCP,LCP,RRP). See DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"pagen/internal/bench"
	"pagen/internal/cliutil"
	"pagen/internal/model"
)

func main() {
	var (
		mode    = flag.String("mode", "strong", "strong, weak, xsweep or headline")
		n       = flag.Int64("n", 1000000, "nodes (strong/headline; paper: 1e9)")
		x       = flag.Int("x", 6, "edges per node (paper: 6 strong, 5 headline)")
		p       = flag.Float64("p", 0.5, "direct-attachment probability")
		ps      = flag.String("ranks", "1,2,4,8,16,32,64", "comma-separated rank counts")
		perRank = flag.Int64("edges-per-rank", 200000, "weak scaling: edges per rank (paper: 1e7)")
		seed    = flag.Uint64("seed", 1, "random seed")
		schemes = flag.String("schemes", "UCP,LCP,RRP", "comma-separated schemes")
	)
	flag.Parse()

	kinds, err := cliutil.ParseKinds(*schemes)
	if err != nil {
		fatal(err)
	}
	rankList, err := cliutil.ParseInts(*ps)
	if err != nil {
		fatal(err)
	}

	switch *mode {
	case "strong":
		pr := model.Params{N: *n, X: *x, P: *p}
		fmt.Printf("# Figure 5: strong scaling (n=%d, x=%d)\n", *n, *x)
		rows, err := bench.StrongScaling(pr, kinds, rankList, *seed)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteScaling(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "weak":
		fmt.Printf("# Figure 6: weak scaling (%d edges per rank, x=%d)\n", *perRank, *x)
		rows, err := bench.WeakScaling(*perRank, *x, *p, kinds, rankList, *seed)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteScaling(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "xsweep":
		// The paper's setup (Section 4.1) varies x from 4 to 10.
		fmt.Printf("# x sweep (n=%d, RRP, %d ranks)\n", *n, rankList[len(rankList)-1])
		rows, err := bench.XSweep(*n, []int{4, 6, 8, 10}, *p, rankList[len(rankList)-1], *seed)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteXSweep(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case "headline":
		ranks := rankList[len(rankList)-1]
		pr := model.Params{N: *n, X: *x, P: *p}
		res, err := bench.Headline(pr, ranks, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# Section 4.5: large-network generation (RRP)\n")
		fmt.Printf("n=%d x=%d ranks=%d edges=%d elapsed=%v edges_per_sec=%.4g\n",
			res.N, res.X, res.P, res.Edges, res.Elapsed, res.EdgesPerSec)
		fmt.Printf("# paper: 50e9 edges on 768 processors in 123 s (4.07e8 edges/s)\n")
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-scale:", err)
	os.Exit(1)
}
