// Command pa-analyze reads a generated graph (text or binary edge list)
// and prints its structural report: degree distribution and power-law
// fit (the paper's Figure 4 analysis), clustering, assortativity and
// sampled path length.
//
// Usage:
//
//	pagen -n 1000000 -x 4 -format binary -o g.bin
//	pa-analyze -i g.bin -format binary -dist
//
// -dmin sets the power-law tail cutoff (0 = mean degree);
// -path-sources the BFS sample size of the path-length estimate.
//
// With -stream-dir DIR -ranks P it reads a streamed run's shard files
// (docs/SHARD_FORMAT.md) out of core instead: the edge stream is merged
// block by block, so peak memory is 8n bytes (the degree table) plus
// bounded read buffers, never the edge list. Adjacency-based analyses
// (clustering, assortativity, path length, components) need the full
// graph in memory and are skipped in this mode.
//
// -fingerprint prints an order-sensitive FNV-1a hash of the canonical
// edge stream and exits. The fingerprint of a streamed run's merged
// shards equals the fingerprint of the in-memory run's edge list — the
// cheap byte-identity check CI uses after a kill/resume cycle.
//
// -export-binary FILE converts either input into the binary PAGB edge
// list, byte-identical to what pagen -format binary would have written
// for the same run; streamed shards convert without materialising the
// edge list.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"

	"pagen/internal/analysis"
	"pagen/internal/esink"
	"pagen/internal/graph"
	"pagen/internal/xrand"
)

func main() {
	var (
		in        = flag.String("i", "", "input graph file (default stdin)")
		format    = flag.String("format", "text", "input format: text or binary")
		dmin      = flag.Int64("dmin", 0, "power-law tail cutoff (0 = mean degree)")
		dist      = flag.Bool("dist", false, "also print the log-binned degree distribution")
		sources   = flag.Int("path-sources", 8, "BFS sources for the path-length estimate (0 disables)")
		streamDir = flag.String("stream-dir", "", "read a streamed run's shard directory out of core (requires -ranks; see docs/SHARD_FORMAT.md)")
		ranks     = flag.Int("ranks", 0, "rank count of the streamed run (required with -stream-dir)")
		fingerpr  = flag.Bool("fingerprint", false, "print the order-sensitive fingerprint of the canonical edge stream and exit")
		exportBin = flag.String("export-binary", "", "write the edge stream as a binary PAGB file and exit")
	)
	flag.Parse()

	if *streamDir != "" {
		analyzeStream(*streamDir, *ranks, *dmin, *dist, *fingerpr, *exportBin)
		return
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var g *graph.Graph
	var err error
	switch *format {
	case "text":
		g, err = graph.ReadText(r)
	case "binary":
		g, err = graph.ReadBinary(r)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}

	if *fingerpr {
		fp, err := fingerprint(graph.IterEdges(g))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fingerprint      %016x (%d edges)\n", fp, g.M())
		return
	}
	if *exportBin != "" {
		exportBinary(*exportBin, g.N, g.M(), graph.IterEdges(g))
		return
	}

	cutoff := *dmin
	if cutoff <= 0 {
		cutoff = int64(g.DegreeHistogram().Mean())
		if cutoff < 1 {
			cutoff = 1
		}
	}
	rep, err := analysis.AnalyzeDegrees(g, cutoff)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("nodes            %d\n", rep.N)
	fmt.Printf("edges            %d\n", rep.M)
	fmt.Printf("degree           min %d, max %d, mean %.3f\n", rep.MinDeg, rep.MaxDeg, rep.MeanDeg)
	fmt.Printf("gamma (MLE)      %.3f (d >= %d, tail n = %d, KS = %.4f)\n",
		rep.Gamma, rep.GammaDMin, rep.TailN, rep.GammaKS)
	fmt.Printf("loglog PMF slope %.3f (R2 = %.4f)\n", rep.LogLogSlope, rep.LogLogR2)
	fmt.Printf("components       %d\n", rep.Components)

	csr := g.ToCSR()
	fmt.Printf("clustering       global %.5f, avg local %.5f\n",
		analysis.GlobalClustering(csr), analysis.AverageLocalClustering(csr))
	fmt.Printf("assortativity    %.4f\n", analysis.DegreeAssortativity(g))
	if *sources > 0 {
		rng := xrand.New(1)
		fmt.Printf("avg path length  %.2f (sampled, %d sources)\n",
			analysis.AverageShortestPathSample(csr, *sources, rng.Int64n), *sources)
	}

	if *dist {
		fmt.Println("\ndegree\tP(degree)")
		if err := rep.WriteDistributionTSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// analyzeStream is the out-of-core path: every pass over the edges is a
// fresh block-streaming merge of the shard files, so memory stays at the
// degree table plus read buffers no matter how many edges the run wrote.
func analyzeStream(dir string, ranks int, dmin int64, dist, fingerpr bool, exportBin string) {
	if ranks < 1 {
		fatal(fmt.Errorf("-stream-dir needs -ranks (the streamed run's rank count)"))
	}
	d, err := esink.OpenDir(dir, ranks)
	if err != nil {
		fatal(err)
	}
	defer d.Close()
	meta := d.Meta()
	m := d.Edges()

	if fingerpr {
		fp, err := fingerprint(d.Iter(0))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fingerprint      %016x (%d edges)\n", fp, m)
		return
	}
	if exportBin != "" {
		exportBinary(exportBin, meta.N, m, d.Iter(0))
		return
	}

	deg, err := graph.DegreesFromIterator(meta.N, d.Iter(0))
	if err != nil {
		fatal(err)
	}
	cutoff := dmin
	if cutoff <= 0 && meta.N > 0 {
		cutoff = 2 * m / meta.N
		if cutoff < 1 {
			cutoff = 1
		}
	}
	rep, err := analysis.AnalyzeDegreeSequence(deg, cutoff)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream           %d shards (n=%d x=%d p=%g seed=%d scheme=%s)\n",
		ranks, meta.N, meta.X, meta.P, meta.Seed, meta.Scheme)
	fmt.Printf("nodes            %d\n", rep.N)
	fmt.Printf("edges            %d\n", rep.M)
	fmt.Printf("degree           min %d, max %d, mean %.3f\n", rep.MinDeg, rep.MaxDeg, rep.MeanDeg)
	fmt.Printf("gamma (MLE)      %.3f (d >= %d, tail n = %d, KS = %.4f)\n",
		rep.Gamma, rep.GammaDMin, rep.TailN, rep.GammaKS)
	fmt.Printf("loglog PMF slope %.3f (R2 = %.4f)\n", rep.LogLogSlope, rep.LogLogR2)
	fmt.Println("clustering       skipped (adjacency analyses need an in-memory graph; use -export-binary)")

	if dist {
		fmt.Println("\ndegree\tP(degree)")
		if err := rep.WriteDistributionTSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// fingerprint hashes the edge stream order-sensitively (FNV-1a over the
// little-endian u, v words): equal streams hash equal, any reordering,
// duplication or loss almost surely does not.
func fingerprint(it graph.EdgeIterator) (uint64, error) {
	h := fnv.New64a()
	var buf [16]byte
	var count int64
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(e.U) >> (8 * i))
			buf[8+i] = byte(uint64(e.V) >> (8 * i))
		}
		h.Write(buf[:])
		count++
	}
	if err := it.Err(); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}

// exportBinary writes the edge stream as a PAGB file.
func exportBinary(path string, n, m int64, it graph.EdgeIterator) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := graph.WriteBinaryStream(f, n, m, it); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pa-analyze: wrote %d edges to %s\n", m, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-analyze:", err)
	os.Exit(1)
}
