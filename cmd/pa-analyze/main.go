// Command pa-analyze reads a generated graph (text or binary edge list)
// and prints its structural report: degree distribution and power-law
// fit (the paper's Figure 4 analysis), clustering, assortativity and
// sampled path length.
//
// Usage:
//
//	pagen -n 1000000 -x 4 -format binary -o g.bin
//	pa-analyze -i g.bin -format binary
package main

import (
	"flag"
	"fmt"
	"os"

	"pagen/internal/analysis"
	"pagen/internal/graph"
	"pagen/internal/xrand"
)

func main() {
	var (
		in      = flag.String("i", "", "input graph file (default stdin)")
		format  = flag.String("format", "text", "input format: text or binary")
		dmin    = flag.Int64("dmin", 0, "power-law tail cutoff (0 = mean degree)")
		dist    = flag.Bool("dist", false, "also print the log-binned degree distribution")
		sources = flag.Int("path-sources", 8, "BFS sources for the path-length estimate (0 disables)")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var g *graph.Graph
	var err error
	switch *format {
	case "text":
		g, err = graph.ReadText(r)
	case "binary":
		g, err = graph.ReadBinary(r)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}

	cutoff := *dmin
	if cutoff <= 0 {
		cutoff = int64(g.DegreeHistogram().Mean())
		if cutoff < 1 {
			cutoff = 1
		}
	}
	rep, err := analysis.AnalyzeDegrees(g, cutoff)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("nodes            %d\n", rep.N)
	fmt.Printf("edges            %d\n", rep.M)
	fmt.Printf("degree           min %d, max %d, mean %.3f\n", rep.MinDeg, rep.MaxDeg, rep.MeanDeg)
	fmt.Printf("gamma (MLE)      %.3f (d >= %d, tail n = %d, KS = %.4f)\n",
		rep.Gamma, rep.GammaDMin, rep.TailN, rep.GammaKS)
	fmt.Printf("loglog PMF slope %.3f (R2 = %.4f)\n", rep.LogLogSlope, rep.LogLogR2)
	fmt.Printf("components       %d\n", rep.Components)

	csr := g.ToCSR()
	fmt.Printf("clustering       global %.5f, avg local %.5f\n",
		analysis.GlobalClustering(csr), analysis.AverageLocalClustering(csr))
	fmt.Printf("assortativity    %.4f\n", analysis.DegreeAssortativity(g))
	if *sources > 0 {
		rng := xrand.New(1)
		fmt.Printf("avg path length  %.2f (sampled, %d sources)\n",
			analysis.AverageShortestPathSample(csr, *sources, rng.Int64n), *sources)
	}

	if *dist {
		fmt.Println("\ndegree\tP(degree)")
		if err := rep.WriteDistributionTSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-analyze:", err)
	os.Exit(1)
}
