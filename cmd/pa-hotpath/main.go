// Command pa-hotpath measures the constant factors of the generation hot
// path — ns per edge, allocations per edge, bytes per frame — and
// maintains the BENCH_hotpath.json trajectory file that optimisation PRs
// compare against.
//
//	pa-hotpath -n 1000000 -x 4 -ranks 4,8                  # print TSV
//	pa-hotpath -n 1000000 -x 4 -ranks 1 -workers 1,2,4,8   # worker sweep
//	pa-hotpath ... -pollevery 0,16,64,1024                 # polling ablation
//	pa-hotpath ... -transport shm,local                    # transport ablation
//	pa-hotpath -n 1000000 -ranks 2,4 -workers 1,2,4 -matrix # efficiency matrix
//	pa-hotpath ... -label after -baseline old.json -out f  # write trajectory
//	pa-hotpath -n 1000000 -ranks 4 -hub-prefix 0 -out results/BENCH_hubcache.json
//	pa-hotpath -n 1000000 -ranks 4 -resolve -out results/BENCH_recompute.json
//
// -hub-prefix switches to the hub-cache traffic census: for every rank
// count it measures cross-rank data messages and bytes per edge with
// the cache off, then at each listed setting (0 = auto-sized), and
// reports the reduction.
//
// -transport sweeps the in-process transports (shm hands message
// batches between co-located ranks by reference; local round-trips
// them through the wire codec), and every row records the transport,
// GOMAXPROCS and work-steal counts it ran with. -matrix additionally
// measures the ranks x workers efficiency matrix — each cell's wall
// time, its speedup over workers=1 at the same rank count and
// transport, and the parallel efficiency — appended to the report as
// the "matrix" block.
//
// -resolve switches to the resolve-mode census: for every rank count it
// measures traffic per edge under the wire protocol, the hub-prefix
// cache, and communication-free recomputation (-resolve=recompute on
// pagen/pa-tcp), plus the replay-depth quantiles of the recompute runs.
//
// -stream-dir DIR switches to the external-memory benchmark: one run
// at the first -ranks/-workers setting spilling its edges to shard
// files (docs/SHARD_FORMAT.md), recording throughput, sink counters
// and the process peak RSS alongside the in-memory estimate the sink
// avoids. It maintains results/BENCH_stream.json:
//
//	pa-hotpath -n 100000000 -x 1 -ranks 1 -stream-dir /tmp/shards \
//	    -out results/BENCH_stream.json
//
// -ckpt-every DLIST switches to the checkpoint-stall sweep: for each
// cadence one streamed+checkpointed run at the first -ranks/-workers
// setting records the per-epoch generation pause and background publish
// time (the low-stall checkpointing trajectory), -ckpt-full-every adds
// base+delta rows at that full-snapshot cadence, and -ckpt-kill-sends
// adds kill/resume legs verifying the resumed shard output is identical
// to an uninterrupted run. It maintains results/BENCH_ckpt.json:
//
//	pa-hotpath -n 1000000 -ranks 4 -workers 1 -ckpt-every 50000,100000 \
//	    -ckpt-dir /tmp/ckbench -ckpt-full-every 4 -ckpt-kill-sends 40,400 \
//	    -baseline old.json -out results/BENCH_ckpt.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pagen/internal/bench"
	"pagen/internal/cliutil"
)

func main() {
	var (
		n           = flag.Int64("n", 1_000_000, "nodes")
		x           = flag.Int("x", 4, "edges per node")
		ps          = flag.String("ranks", "4,8", "comma-separated rank counts")
		ws          = flag.String("workers", "1", "comma-separated per-rank worker counts")
		transports  = flag.String("transport", "shm", "comma-separated in-process transports to sweep: shm, local")
		matrix      = flag.Bool("matrix", false, "measure the intra-host ranks x workers efficiency matrix instead of the flat sweep")
		pe          = flag.String("pollevery", "", "comma-separated polling intervals to sweep (0 = adaptive; empty = engine default)")
		seed        = flag.Uint64("seed", 1, "random seed")
		label       = flag.String("label", "current", "label recorded in the report")
		baseline    = flag.String("baseline", "", "prior trajectory JSON whose current block becomes this file's baseline")
		out         = flag.String("out", "", "write trajectory JSON here (TSV to stdout otherwise)")
		fp          = flag.Bool("fingerprint", false, "print output-graph fingerprints instead of measuring")
		hubs        = flag.String("hub-prefix", "", "comma-separated hub-prefix settings (0 = auto); measures cache traffic against the cache-off baseline instead of the hot path")
		resolve     = flag.Bool("resolve", false, "sweep resolve modes (wire, hub cache, recompute) and report traffic per edge instead of the hot path")
		rcDepth     = flag.Int("recompute-depth", 0, "recompute replay chain depth cap for the -resolve sweep (0 = ~2*log2(n))")
		streamDir   = flag.String("stream-dir", "", "benchmark one streamed run spilling shards to this directory (records throughput, sink counters and peak RSS)")
		streamBlock = flag.Int("stream-block-edges", 0, "edge records per stream block for the -stream-dir benchmark (0 = 65536)")
		ckptEvery   = flag.String("ckpt-every", "", "comma-separated checkpoint cadences to sweep; measures per-epoch pause/publish instead of the hot path (needs -ckpt-dir)")
		ckptDir     = flag.String("ckpt-dir", "", "scratch directory for the -ckpt-every sweep's checkpoints and shards")
		ckptFull    = flag.Int("ckpt-full-every", 0, "adds base+delta rows at this full-snapshot cadence to the -ckpt-every sweep (0 = full-only rows)")
		ckptKills   = flag.String("ckpt-kill-sends", "", "comma-separated chaos kill budgets for the -ckpt-every resume-identity legs (empty = skip)")
	)
	flag.Parse()

	rankList, err := cliutil.ParseInts(*ps)
	if err != nil {
		fatal(err)
	}
	workerList, err := cliutil.ParseInts(*ws)
	if err != nil {
		fatal(err)
	}
	var pollList []int
	if *pe != "" {
		pollList, err = cliutil.ParseIntsMin(*pe, 0)
		if err != nil {
			fatal(err)
		}
	}
	var transportList []string
	for _, t := range strings.Split(*transports, ",") {
		t = strings.TrimSpace(t)
		switch t {
		case "shm", "local":
			transportList = append(transportList, t)
		case "":
		default:
			fatal(fmt.Errorf("-transport %q: want shm or local", t))
		}
	}

	if *fp {
		for _, p := range rankList {
			for _, w := range workerList {
				h, err := bench.FingerprintAt(*n, *x, p, w, *seed)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("n=%d x=%d ranks=%d workers=%d seed=%d fingerprint=%016x\n", *n, *x, p, w, *seed, h)
			}
		}
		return
	}

	if *ckptEvery != "" {
		everyList, err := cliutil.ParseInts(*ckptEvery)
		if err != nil {
			fatal(err)
		}
		var killList []int
		if *ckptKills != "" {
			if killList, err = cliutil.ParseInts(*ckptKills); err != nil {
				fatal(err)
			}
		}
		if *ckptDir == "" {
			fatal(fmt.Errorf("-ckpt-every needs -ckpt-dir (scratch space for checkpoints and shards)"))
		}
		ranks, workers := 1, 1
		if len(rankList) > 0 {
			ranks = rankList[0]
		}
		if len(workerList) > 0 {
			workers = workerList[0]
		}
		cfg := bench.CkptConfig{
			N: *n, X: *x, Ranks: ranks, Workers: workers, Seed: *seed,
			FullEvery: *ckptFull, Dir: *ckptDir,
		}
		for _, e := range everyList {
			cfg.Every = append(cfg.Every, int64(e))
		}
		for _, k := range killList {
			cfg.KillSends = append(cfg.KillSends, int64(k))
		}
		rep, err := bench.CkptSweep(cfg)
		if err != nil {
			fatal(err)
		}
		rep.Label = *label
		var base *bench.CkptReport
		if *baseline != "" {
			if base, err = bench.ReadCkptJSON(*baseline); err != nil {
				fatal(err)
			}
			rep.Baseline = base.Rows
			rep.BaselineLabel = base.Label
		}
		if *out == "" {
			if err := bench.WriteCkpt(os.Stdout, rep); err != nil {
				fatal(err)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteCkptJSON(f, base, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if err := bench.WriteCkpt(os.Stderr, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	if *streamDir != "" {
		ranks := 1
		if len(rankList) > 0 {
			ranks = rankList[0]
		}
		workers := 1
		if len(workerList) > 0 {
			workers = workerList[0]
		}
		rep, err := bench.StreamBench(bench.StreamConfig{
			N: *n, X: *x, Ranks: ranks, Workers: workers, Seed: *seed,
			Dir: *streamDir, BlockEdges: *streamBlock,
		})
		if err != nil {
			fatal(err)
		}
		rep.Label = *label
		if *out == "" {
			if err := bench.WriteStream(os.Stdout, rep); err != nil {
				fatal(err)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteStreamJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if err := bench.WriteStream(os.Stderr, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	if *resolve {
		workers := 1
		if len(workerList) > 0 {
			workers = workerList[0]
		}
		rep, err := bench.RecomputeSweep(bench.RecomputeConfig{
			N: *n, X: *x, Ranks: rankList, Workers: workers,
			Seed: *seed, Depth: *rcDepth,
		})
		if err != nil {
			fatal(err)
		}
		rep.Label = *label
		if *out == "" {
			if err := bench.WriteRecompute(os.Stdout, rep); err != nil {
				fatal(err)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteRecomputeJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	if *hubs != "" {
		hubList, err := cliutil.ParseIntsMin(*hubs, 0)
		if err != nil {
			fatal(err)
		}
		settings := make([]int64, len(hubList))
		for i, h := range hubList {
			settings[i] = int64(h)
		}
		workers := 1
		if len(workerList) > 0 {
			workers = workerList[0]
		}
		rep, err := bench.HubCacheSweep(bench.HubCacheConfig{
			N: *n, X: *x, Ranks: rankList, Workers: workers,
			Seed: *seed, HubPrefixes: settings,
		})
		if err != nil {
			fatal(err)
		}
		rep.Label = *label
		if *out == "" {
			if err := bench.WriteHubCache(os.Stdout, rep); err != nil {
				fatal(err)
			}
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteHubCacheJSON(f, rep); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
		return
	}

	rep, err := bench.HotPathSweep(bench.HotPathConfig{
		N: *n, X: *x, Ranks: rankList, Workers: workerList,
		PollEvery: pollList, Transports: transportList, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	rep.Label = *label
	if *matrix {
		rep.Matrix, err = bench.HotPathMatrix(bench.MatrixConfig{
			N: *n, X: *x, Ranks: rankList, Workers: workerList,
			Transports: transportList, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
	}

	if *out == "" {
		fmt.Printf("# hot path (n=%d, x=%d, RRP)\n", *n, *x)
		if err := bench.WriteHotPath(os.Stdout, rep); err != nil {
			fatal(err)
		}
		if len(rep.Matrix) > 0 {
			fmt.Printf("# ranks x workers matrix (n=%d, x=%d, GOMAXPROCS=%d)\n", *n, *x, rep.GOMAXPROCS)
			if err := bench.WriteMatrix(os.Stdout, rep.Matrix); err != nil {
				fatal(err)
			}
		}
		return
	}

	var base *bench.HotPathReport
	if *baseline != "" {
		b, err := bench.ReadHotPathJSON(*baseline)
		if err != nil {
			fatal(err)
		}
		base = b
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := bench.WriteHotPathJSON(f, base, rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pa-hotpath:", err)
	os.Exit(1)
}
